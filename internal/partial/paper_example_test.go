package partial

import (
	"testing"

	"crackstore/internal/store"
)

// TestPaperFigure8 replays the partial-map example of Figure 8 over the
// paper's 14-tuple column and verifies the observable area lifecycle:
// fetched/unfetched transitions, chunk reuse across maps, and exact
// results after each step.
//
//	A = [15 8 19 6 11 2 14 5 12 18 4 9 13 7], keys 1..14 (0..13 here)
func TestPaperFigure8(t *testing.T) {
	a := []Value{15, 8, 19, 6, 11, 2, 14, 5, 12, 18, 4, 9, 13, 7}
	rel := store.NewRelation("R", "A", "B", "C")
	for i, v := range a {
		rel.AppendRow(v, Value(100+i), Value(200+i)) // b_i, c_i tagged by key
	}
	s := NewStore(rel)
	nv := &naive{rel: rel, dead: map[int]bool{}}
	check := func(step string, pred store.Pred, proj string) {
		res := s.SelectProject("A", pred, []string{proj})
		want := nv.rows([]AttrPred{{Attr: "A", Pred: pred}}, []string{proj}, false)
		mustSameRows(t, resultRows(res, []string{proj}), want, step)
	}

	// Query 1: select B where 9 < A <= 15. The gap is cracked and exactly
	// the needed range is fetched: one area (paper: U | F | U).
	q1 := store.Pred{Lo: 9, Hi: 15, LoIncl: false, HiIncl: true}
	check("q1", q1, "B")
	set := s.SetIfExists("A")
	if set.NumAreas() != 1 {
		t.Fatalf("after q1: %d areas, want 1", set.NumAreas())
	}
	if got := areaSpan(set.areas[0]); got != 5 {
		t.Fatalf("after q1: fetched span %d tuples, want 5 (values 11,12,13,14,15)", got)
	}

	// Query 2: select B where 9 < A < 13 — inside the fetched area; the
	// chunk is cracked (tape grows), no new area is fetched.
	tapeBefore := len(set.areas[0].tape)
	check("q2", store.Open(9, 13), "B")
	if set.NumAreas() != 1 {
		t.Fatalf("after q2: %d areas, want 1", set.NumAreas())
	}
	if len(set.areas[0].tape) <= tapeBefore {
		t.Fatal("after q2: boundary crack should have been logged in the area tape")
	}

	// Query 3: select B where 5 <= A < 8 — a second, disjoint area is
	// fetched (paper: v>=5 F, v>=8 U).
	check("q3", store.Range(5, 8), "B")
	if set.NumAreas() != 2 {
		t.Fatalf("after q3: %d areas, want 2", set.NumAreas())
	}

	// Query 4: select C where 8 <= A < 15 — M_AC materializes chunks: the
	// [8,9] gap becomes a third fetched area, and the existing (9,15] area
	// is reused ("a new chunk is created using all tuples in w" — the
	// fetched area is not re-cracked).
	check("q4", store.Range(8, 15), "C")
	if set.NumAreas() != 3 {
		t.Fatalf("after q4: %d areas, want 3", set.NumAreas())
	}
	// The (9,15] area must now hold chunks for both B and C.
	var shared *area
	for _, w := range set.areas {
		if areaSpan(w) == 5 {
			shared = w
		}
	}
	if shared == nil {
		t.Fatal("the q1 area disappeared")
	}
	if shared.chunks["B"] == nil || shared.chunks["C"] == nil {
		t.Fatalf("shared area should hold B and C chunks, has %d", len(shared.chunks))
	}
	// H_A must never have been cracked inside a fetched area: every area
	// span must still match its recorded bounds.
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func areaSpan(w *area) int { return w.hi - w.lo }

// TestFigure8ChunkIndependence verifies the "each chunk is treated
// independently" property: cracking one area's chunks leaves the cursors
// and tapes of other areas untouched.
func TestFigure8ChunkIndependence(t *testing.T) {
	a := []Value{15, 8, 19, 6, 11, 2, 14, 5, 12, 18, 4, 9, 13, 7}
	rel := store.NewRelation("R", "A", "B")
	for i, v := range a {
		rel.AppendRow(v, Value(100+i))
	}
	s := NewStore(rel)
	s.SelectProject("A", store.Pred{Lo: 9, Hi: 15, LoIncl: false, HiIncl: true}, []string{"B"})
	s.SelectProject("A", store.Range(2, 8), []string{"B"})
	set := s.SetIfExists("A")
	if set.NumAreas() != 2 {
		t.Fatalf("%d areas, want 2", set.NumAreas())
	}
	w0, w1 := set.areas[0], set.areas[1]
	t0, t1 := len(w0.tape), len(w1.tape)
	// Crack only inside the first (by value) area.
	s.SelectProject("A", store.Range(3, 6), []string{"B"})
	if len(w1.tape) > t1 && len(w0.tape) > t0 {
		t.Fatal("a query inside one area grew both tapes")
	}
}
