package partial

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crackstore/internal/store"
)

type naive struct {
	rel  *store.Relation
	dead map[int]bool
}

func (nv *naive) rows(preds []AttrPred, projs []string, disjunctive bool) [][]Value {
	var out [][]Value
	n := nv.rel.NumRows()
	for i := 0; i < n; i++ {
		if nv.dead[i] {
			continue
		}
		match := !disjunctive
		for _, ap := range preds {
			m := ap.Pred.Matches(nv.rel.MustColumn(ap.Attr).Vals[i])
			if disjunctive {
				match = match || m
			} else {
				match = match && m
			}
		}
		if !match {
			continue
		}
		row := make([]Value, len(projs))
		for j, attr := range projs {
			row[j] = nv.rel.MustColumn(attr).Vals[i]
		}
		out = append(out, row)
	}
	return out
}

func canon(rows [][]Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func resultRows(res Result, projs []string) [][]Value {
	rows := make([][]Value, res.N)
	for i := 0; i < res.N; i++ {
		row := make([]Value, len(projs))
		for j, attr := range projs {
			row[j] = res.Cols[attr][i]
		}
		rows[i] = row
	}
	return rows
}

func sameRows(got, want [][]Value) bool {
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		return false
	}
	for i := range w {
		if g[i] != w[i] {
			return false
		}
	}
	return true
}

func mustSameRows(t *testing.T, got, want [][]Value, ctx string) {
	t.Helper()
	if !sameRows(got, want) {
		t.Fatalf("%s: got %d rows %v..., want %d rows", ctx, len(got), first3(got), len(want))
	}
}

func first3(rows [][]Value) [][]Value {
	if len(rows) > 3 {
		return rows[:3]
	}
	return rows
}

func buildRel(rng *rand.Rand, n int, attrs []string, domain int64) *store.Relation {
	return store.Build("R", n, attrs, func(attr string, row int) Value {
		return Value(rng.Int63n(domain))
	})
}

func TestSelectProjectBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := buildRel(rng, 500, []string{"A", "B", "C"}, 100)
	s := NewStore(rel)
	nv := &naive{rel: rel, dead: map[int]bool{}}
	for q := 0; q < 30; q++ {
		lo := rng.Int63n(100)
		hi := lo + rng.Int63n(100-lo+1)
		pred := store.Range(lo, hi)
		res := s.SelectProject("A", pred, []string{"B", "C"})
		want := nv.rows([]AttrPred{{Attr: "A", Pred: pred}}, []string{"B", "C"}, false)
		mustSameRows(t, resultRows(res, []string{"B", "C"}), want, fmt.Sprintf("q%d %v", q, pred))
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestChunksCreatedOnDemandOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := buildRel(rng, 1000, []string{"A", "B"}, 1000)
	s := NewStore(rel)
	s.SelectProject("A", store.Range(100, 200), []string{"B"})
	set := s.SetIfExists("A")
	if set == nil {
		t.Fatal("set not created")
	}
	// Only the requested range (plus possibly empty side areas) should be
	// materialized: storage must be far below a full map.
	if got := s.StorageTuples(); got > 350 {
		t.Fatalf("storage = %d tuples; expected only the ~10%% chunk", got)
	}
	if set.NumAreas() == 0 {
		t.Fatal("no fetched area")
	}
}

func TestPartialAlignmentSkipsCoveredChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := buildRel(rng, 2000, []string{"A", "B", "C"}, 1000)
	s := NewStore(rel)
	// Fetch [0,1000) for B via a wide query, cracking it several times.
	s.SelectProject("A", store.Range(0, 1000), []string{"B"})
	s.SelectProject("A", store.Range(100, 900), []string{"B"})
	s.SelectProject("A", store.Range(200, 800), []string{"B"})
	set := s.SetIfExists("A")
	// Now query the full range again with C: the interior area is fully
	// covered, so the fresh C chunks must NOT be forced to the tape end of
	// heavily cracked areas when used as covered chunks.
	res := s.SelectProject("A", store.Range(0, 1000), []string{"C"})
	nv := &naive{rel: rel, dead: map[int]bool{}}
	want := nv.rows([]AttrPred{{Attr: "A", Pred: store.Range(0, 1000)}}, []string{"C"}, false)
	mustSameRows(t, resultRows(res, []string{"C"}), want, "covered query")
	// The covered middle area's C chunk should have cursor 0 (no cracks
	// replayed) while its B chunk sits at the area tape end.
	lazyFound := false
	for _, w := range set.areas {
		cb, okB := w.chunks["B"]
		cc, okC := w.chunks["C"]
		if okB && okC && cc.cursor < cb.cursor {
			lazyFound = true
		}
	}
	if !lazyFound {
		t.Fatal("expected at least one C chunk lazily aligned behind its B sibling")
	}
}

// Property: partial SelectProject agrees with naive scan under random
// query sequences, including multi-projection row alignment.
func TestQuickSelectProject(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 300, []string{"A", "B", "C", "D"}, 80)
		s := NewStore(rel)
		nv := &naive{rel: rel, dead: map[int]bool{}}
		projSets := [][]string{{"B"}, {"B", "C"}, {"C", "D"}, {"B", "C", "D"}}
		for q := 0; q < 25; q++ {
			lo := rng.Int63n(80)
			hi := lo + rng.Int63n(80-lo+1)
			pred := store.Pred{Lo: lo, Hi: hi, LoIncl: rng.Intn(2) == 0, HiIncl: rng.Intn(2) == 0}
			projs := projSets[rng.Intn(len(projSets))]
			res := s.SelectProject("A", pred, projs)
			if !sameRows(resultRows(res, projs), nv.rows([]AttrPred{{Attr: "A", Pred: pred}}, projs, false)) {
				return false
			}
		}
		return s.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: conjunctive and disjunctive multi-selections agree with naive.
func TestQuickMultiSelect(t *testing.T) {
	f := func(seed int64, disjunctive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 250, []string{"A", "B", "C", "D"}, 60)
		s := NewStore(rel)
		nv := &naive{rel: rel, dead: map[int]bool{}}
		attrs := []string{"A", "B", "C"}
		for q := 0; q < 12; q++ {
			nPred := 1 + rng.Intn(3)
			var preds []AttrPred
			seen := map[string]bool{}
			for len(preds) < nPred {
				attr := attrs[rng.Intn(len(attrs))]
				if seen[attr] {
					continue
				}
				seen[attr] = true
				lo := rng.Int63n(60)
				hi := lo + rng.Int63n(60-lo+1)
				preds = append(preds, AttrPred{Attr: attr, Pred: store.Range(lo, hi)})
			}
			projs := []string{"D", "A"}
			res := s.MultiSelect(preds, projs, disjunctive)
			if !sameRows(resultRows(res, projs), nv.rows(preds, projs, disjunctive)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved updates and queries stay correct (area tapes with
// insert/delete entries, key chunks, pending push-back on unfetch).
func TestQuickUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 200, []string{"A", "B", "C"}, 50)
		s := NewStore(rel)
		nv := &naive{rel: rel, dead: map[int]bool{}}
		var live []int
		for i := 0; i < 200; i++ {
			live = append(live, i)
		}
		for step := 0; step < 50; step++ {
			switch rng.Intn(4) {
			case 0:
				k := s.Insert(Value(rng.Int63n(50)), Value(rng.Int63n(50)), Value(rng.Int63n(50)))
				live = append(live, k)
			case 1:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					k := live[i]
					live = append(live[:i], live[i+1:]...)
					s.Delete(k)
					nv.dead[k] = true
				}
			default:
				lo := rng.Int63n(50)
				hi := lo + rng.Int63n(50-lo+1)
				pred := store.Range(lo, hi)
				projs := []string{"B", "C"}
				res := s.SelectProject("A", pred, projs)
				if !sameRows(resultRows(res, projs), nv.rows([]AttrPred{{Attr: "A", Pred: pred}}, projs, false)) {
					return false
				}
			}
		}
		return s.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetEvictionAndRecreation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := buildRel(rng, 1000, []string{"A", "B", "C", "D", "E"}, 1000)
	s := NewStore(rel)
	s.Budget = 700
	nv := &naive{rel: rel, dead: map[int]bool{}}
	// Cycle through attributes so chunks must be dropped and recreated.
	projCycle := [][]string{{"B"}, {"C"}, {"D"}, {"E"}, {"B", "C"}, {"D", "E"}}
	for q := 0; q < 40; q++ {
		lo := rng.Int63n(1000)
		hi := lo + rng.Int63n(1000-lo+1)
		pred := store.Range(lo, hi)
		projs := projCycle[q%len(projCycle)]
		res := s.SelectProject("A", pred, projs)
		want := nv.rows([]AttrPred{{Attr: "A", Pred: pred}}, projs, false)
		mustSameRows(t, resultRows(res, projs), want, fmt.Sprintf("q%d", q))
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetEvictionWithUpdates(t *testing.T) {
	// Un-fetching an area whose tape holds update entries must push them
	// back to pending so they reapply on refetch.
	rng := rand.New(rand.NewSource(6))
	rel := buildRel(rng, 400, []string{"A", "B", "C"}, 100)
	s := NewStore(rel)
	s.Budget = 300
	nv := &naive{rel: rel, dead: map[int]bool{}}
	var live []int
	for i := 0; i < 400; i++ {
		live = append(live, i)
	}
	for step := 0; step < 120; step++ {
		switch step % 4 {
		case 0:
			k := s.Insert(Value(rng.Int63n(100)), Value(rng.Int63n(100)), Value(rng.Int63n(100)))
			live = append(live, k)
		case 1:
			i := rng.Intn(len(live))
			k := live[i]
			live = append(live[:i], live[i+1:]...)
			s.Delete(k)
			nv.dead[k] = true
		default:
			lo := rng.Int63n(100)
			hi := lo + rng.Int63n(100-lo+1)
			pred := store.Range(lo, hi)
			projs := []string{"B"}
			if step%3 == 0 {
				projs = []string{"C"}
			}
			res := s.SelectProject("A", pred, projs)
			want := nv.rows([]AttrPred{{Attr: "A", Pred: pred}}, projs, false)
			mustSameRows(t, resultRows(res, projs), want, fmt.Sprintf("step %d", step))
		}
	}
}

func TestHeadDropAndRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rel := buildRel(rng, 1000, []string{"A", "B"}, 500)
	s := NewStore(rel)
	nv := &naive{rel: rel, dead: map[int]bool{}}
	// Crack a few times, then force head drop.
	s.SelectProject("A", store.Range(0, 500), []string{"B"})
	s.SelectProject("A", store.Range(100, 400), []string{"B"})
	s.DropHead()
	before := s.StorageTuples()
	// A covered query must work without the head.
	res := s.SelectProject("A", store.Range(100, 400), []string{"B"})
	want := nv.rows([]AttrPred{{Attr: "A", Pred: store.Range(100, 400)}}, []string{"B"}, false)
	mustSameRows(t, resultRows(res, []string{"B"}), want, "covered, head dropped")
	if s.StorageTuples() != before {
		t.Fatal("covered query should not recover heads")
	}
	// A query needing a new crack must recover the head and stay correct.
	res = s.SelectProject("A", store.Range(150, 350), []string{"B"})
	want = nv.rows([]AttrPred{{Attr: "A", Pred: store.Range(150, 350)}}, []string{"B"}, false)
	mustSameRows(t, resultRows(res, []string{"B"}), want, "crack after head drop")
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeadRecoveryFromSibling(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rel := buildRel(rng, 600, []string{"A", "B", "C"}, 300)
	s := NewStore(rel)
	// Align B and C chunks to identical cursors.
	s.SelectProject("A", store.Range(0, 300), []string{"B", "C"})
	s.SelectProject("A", store.Range(50, 250), []string{"B", "C"})
	// Drop only B's head by hand.
	set := s.SetIfExists("A")
	var dropped *chunk
	for _, w := range set.areas {
		if c, ok := w.chunks["B"]; ok && c.Len() > 0 {
			c.p.Head = nil
			c.headDropped = true
			dropped = c
			break
		}
	}
	if dropped == nil {
		t.Fatal("no chunk to drop")
	}
	// Next crack recovers from the same-cursor C sibling.
	res := s.SelectProject("A", store.Range(80, 220), []string{"B", "C"})
	nv := &naive{rel: rel, dead: map[int]bool{}}
	want := nv.rows([]AttrPred{{Attr: "A", Pred: store.Range(80, 220)}}, []string{"B", "C"}, false)
	mustSameRows(t, resultRows(res, []string{"B", "C"}), want, "sibling recovery")
	if dropped.headDropped {
		t.Fatal("head not recovered")
	}
}

func TestAutomaticHeadDropOnCacheResidentPieces(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := buildRel(rng, 2000, []string{"A", "B"}, 2000)
	s := NewStore(rel)
	s.CachedPieceTuples = 256
	nv := &naive{rel: rel, dead: map[int]bool{}}
	// Many queries over one hot range shrink pieces below the threshold.
	for q := 0; q < 60; q++ {
		lo := rng.Int63n(1000)
		hi := lo + 1 + rng.Int63n(200)
		pred := store.Range(lo, hi)
		res := s.SelectProject("A", pred, []string{"B"})
		want := nv.rows([]AttrPred{{Attr: "A", Pred: pred}}, []string{"B"}, false)
		mustSameRows(t, resultRows(res, []string{"B"}), want, fmt.Sprintf("q%d", q))
	}
	droppedAny := false
	for _, w := range s.SetIfExists("A").areas {
		for _, c := range w.chunks {
			if c.headDropped {
				droppedAny = true
			}
		}
	}
	if !droppedAny {
		t.Fatal("expected some heads dropped under CachedPieceTuples policy")
	}
}

func TestEstimateSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rel := buildRel(rng, 1000, []string{"A", "B"}, 1000)
	s := NewStore(rel)
	pred := store.Range(200, 400)
	est0 := s.EstimateSelectivity("A", pred)
	if est0 <= 0 || est0 > 1000 {
		t.Fatalf("fallback estimate = %d", est0)
	}
	s.SelectProject("A", pred, []string{"B"})
	truth := store.SelectCount(rel.MustColumn("A"), pred)
	est1 := s.EstimateSelectivity("A", pred)
	if est1 != truth {
		t.Fatalf("post-fetch estimate = %d, want %d", est1, truth)
	}
}

func TestEmptyPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := buildRel(rng, 100, []string{"A", "B"}, 50)
	s := NewStore(rel)
	res := s.SelectProject("A", store.Open(10, 10), []string{"B"})
	if res.N != 0 {
		t.Fatalf("empty predicate returned %d rows", res.N)
	}
}

func BenchmarkPartialSelectProject(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rel := store.Build("R", 1<<16, []string{"A", "B", "C"}, func(string, int) Value {
		return Value(rng.Int63n(1 << 16))
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewStore(rel)
		b.StartTimer()
		for q := 0; q < 50; q++ {
			lo := rng.Int63n(1 << 16)
			s.SelectProject("A", store.Range(lo, lo+(1<<13)), []string{"B", "C"})
		}
	}
}

// Property: disjunctive multi-selections agree with naive under interleaved
// updates (locks in the FullRange merge behavior).
func TestQuickDisjunctiveWithUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := buildRel(rng, 200, []string{"A", "B", "C"}, 50)
		s := NewStore(rel)
		nv := &naive{rel: rel, dead: map[int]bool{}}
		var live []int
		for i := 0; i < 200; i++ {
			live = append(live, i)
		}
		for step := 0; step < 30; step++ {
			switch rng.Intn(4) {
			case 0:
				k := s.Insert(Value(rng.Int63n(50)), Value(rng.Int63n(50)), Value(rng.Int63n(50)))
				live = append(live, k)
			case 1:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					k := live[i]
					live = append(live[:i], live[i+1:]...)
					s.Delete(k)
					nv.dead[k] = true
				}
			default:
				lo1, lo2 := rng.Int63n(50), rng.Int63n(50)
				preds := []AttrPred{
					{Attr: "A", Pred: store.Range(lo1, lo1+10)},
					{Attr: "B", Pred: store.Range(lo2, lo2+10)},
				}
				res := s.MultiSelect(preds, []string{"C"}, true)
				if !sameRows(resultRows(res, []string{"C"}), nv.rows(preds, []string{"C"}, true)) {
					return false
				}
			}
		}
		return s.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
