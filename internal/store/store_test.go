package store

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPredMatches(t *testing.T) {
	cases := []struct {
		p    Pred
		v    Value
		want bool
	}{
		{Open(10, 20), 10, false},
		{Open(10, 20), 11, true},
		{Open(10, 20), 19, true},
		{Open(10, 20), 20, false},
		{Range(10, 20), 10, true},
		{Range(10, 20), 20, false},
		{Point(7), 7, true},
		{Point(7), 8, false},
		{Pred{10, 20, true, true}, 20, true},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Errorf("%v.Matches(%d) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestPredBounds(t *testing.T) {
	p := Open(10, 20) // 10 < A < 20
	lb, ub := p.LowerBound(), p.UpperBound()
	if lb.V != 10 || lb.Incl {
		t.Errorf("LowerBound of %v = %v, want >10", p, lb)
	}
	if ub.V != 20 || !ub.Incl {
		t.Errorf("UpperBound of %v = %v, want >=20", p, ub)
	}
	q := Range(10, 20) // 10 <= A < 20
	lb, ub = q.LowerBound(), q.UpperBound()
	if lb.V != 10 || !lb.Incl {
		t.Errorf("LowerBound of %v = %v, want >=10", q, lb)
	}
	if ub.V != 20 || !ub.Incl {
		t.Errorf("UpperBound of %v = %v, want >=20", q, ub)
	}
}

func TestRelationBuildAndAccess(t *testing.T) {
	r := Build("R", 5, []string{"A", "B"}, func(attr string, row int) Value {
		if attr == "A" {
			return Value(row)
		}
		return Value(row * 10)
	})
	if r.NumRows() != 5 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
	if r.Column("A").Vals[3] != 3 || r.Column("B").Vals[3] != 30 {
		t.Fatal("wrong values")
	}
	if r.Column("C") != nil {
		t.Fatal("nonexistent column should be nil")
	}
}

func TestMustColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRelation("R", "A").MustColumn("Z")
}

func TestAppendAndDeleteRows(t *testing.T) {
	r := NewRelation("R", "A", "B")
	r.AppendRow(1, 10)
	r.AppendRow(2, 20)
	r.AppendRow(3, 30)
	if r.NumRows() != 3 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
	r.DeleteRows([]int{1})
	if r.NumRows() != 2 {
		t.Fatalf("NumRows after delete = %d", r.NumRows())
	}
	if r.Column("A").Vals[1] != 3 || r.Column("B").Vals[1] != 30 {
		t.Fatal("delete broke alignment")
	}
}

func TestSelectOrderPreserving(t *testing.T) {
	col := NewColumn("A", []Value{5, 1, 9, 3, 7, 2})
	pos := Select(col, Range(2, 8))
	want := []int{0, 3, 4, 5}
	if len(pos) != len(want) {
		t.Fatalf("Select = %v, want %v", pos, want)
	}
	for i := range want {
		if pos[i] != want[i] {
			t.Fatalf("Select = %v, want %v", pos, want)
		}
	}
	if SelectCount(col, Range(2, 8)) != 4 {
		t.Fatal("SelectCount mismatch")
	}
}

func TestReconstruct(t *testing.T) {
	col := NewColumn("B", []Value{10, 11, 12, 13})
	got := Reconstruct(col, []int{3, 0, 2})
	if got[0] != 13 || got[1] != 10 || got[2] != 12 {
		t.Fatalf("Reconstruct = %v", got)
	}
}

func TestJoin(t *testing.T) {
	l := []Value{1, 2, 3, 2}
	r := []Value{2, 4, 2}
	pairs := Join(l, r)
	// l[1]=2 matches r[0],r[2]; l[3]=2 matches r[0],r[2].
	if len(pairs) != 4 {
		t.Fatalf("Join produced %d pairs, want 4", len(pairs))
	}
	// Outer (left) order must be preserved.
	for i := 1; i < len(pairs); i++ {
		if pairs[i].L < pairs[i-1].L {
			t.Fatal("Join did not preserve outer order")
		}
	}
}

func TestGroupBy(t *testing.T) {
	groups := GroupBy([]Value{3, 1, 3, 2, 1})
	if len(groups) != 3 {
		t.Fatalf("GroupBy = %d groups, want 3", len(groups))
	}
	if groups[0].Key != 1 || groups[1].Key != 2 || groups[2].Key != 3 {
		t.Fatal("groups not sorted by key")
	}
	if len(groups[0].Members) != 2 || groups[0].Members[0] != 1 || groups[0].Members[1] != 4 {
		t.Fatalf("group 1 members = %v", groups[0].Members)
	}
}

func TestOrderByStable(t *testing.T) {
	idx := OrderBy([]Value{3, 1, 3, 1})
	want := []int{1, 3, 0, 2}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("OrderBy = %v, want %v", idx, want)
		}
	}
}

func TestAggregates(t *testing.T) {
	vals := []Value{4, -2, 9, 0}
	if m, ok := Max(vals); !ok || m != 9 {
		t.Errorf("Max = %d,%v", m, ok)
	}
	if m, ok := Min(vals); !ok || m != -2 {
		t.Errorf("Min = %d,%v", m, ok)
	}
	if s := Sum(vals); s != 11 {
		t.Errorf("Sum = %d", s)
	}
	if _, ok := Max(nil); ok {
		t.Error("Max of empty should report !ok")
	}
}

// Property: Select + Reconstruct on the selection column returns exactly the
// matching values, in insertion order.
func TestQuickSelectReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(400)
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = Value(rng.Intn(1000))
		}
		col := NewColumn("A", vals)
		lo := Value(rng.Intn(1000))
		hi := lo + Value(rng.Intn(500))
		p := Range(lo, hi)
		pos := Select(col, p)
		rec := Reconstruct(col, pos)
		want := 0
		for _, v := range vals {
			if p.Matches(v) {
				want++
			}
		}
		if len(rec) != want {
			return false
		}
		for _, v := range rec {
			if !p.Matches(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Join output size equals the sum over join keys of |L_k|*|R_k|.
func TestQuickJoinCardinality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := make([]Value, rng.Intn(200))
		r := make([]Value, rng.Intn(200))
		for i := range l {
			l[i] = Value(rng.Intn(20))
		}
		for i := range r {
			r[i] = Value(rng.Intn(20))
		}
		lc := map[Value]int{}
		rc := map[Value]int{}
		for _, v := range l {
			lc[v]++
		}
		for _, v := range r {
			rc[v]++
		}
		want := 0
		for k, c := range lc {
			want += c * rc[k]
		}
		return len(Join(l, r)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectScan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]Value, 1<<18)
	for i := range vals {
		vals[i] = Value(rng.Intn(1 << 18))
	}
	col := NewColumn("A", vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(col, Range(1000, 1<<16))
	}
}

func BenchmarkReconstructOrdered(b *testing.B) {
	vals := make([]Value, 1<<18)
	pos := make([]int, 1<<17)
	for i := range pos {
		pos[i] = i * 2
	}
	col := NewColumn("A", vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reconstruct(col, pos)
	}
}

func BenchmarkReconstructRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]Value, 1<<18)
	pos := make([]int, 1<<17)
	for i := range pos {
		pos[i] = rng.Intn(1 << 18)
	}
	col := NewColumn("A", vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reconstruct(col, pos)
	}
}
