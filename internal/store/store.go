// Package store implements the column-store kernel the paper builds on: a
// MonetDB-style binary-association-table (BAT) model where every attribute
// of a relation is stored as a separate column in tuple insertion order and
// the key (tuple id / position) is a virtual dense sequence (Section 2.1).
//
// The package provides the base physical algebra: positional range select,
// positional tuple reconstruction, hash join, group-by, order-by, and
// aggregates. All higher layers — selection cracking, sideways cracking, and
// partial sideways cracking — operate on columns from this kernel.
package store

import (
	"fmt"
	"sort"

	"crackstore/internal/crackindex"
)

// Value is the attribute value type. The paper evaluates on integer columns;
// strings in TPC-H are dictionary-encoded to Values (see internal/tpch).
type Value = int64

// Pred is a one-attribute range predicate: Lo (<|<=) A (<|<=) Hi, with
// inclusivity controlled by LoIncl and HiIncl. A point predicate is
// Pred{V, V, true, true}.
type Pred struct {
	Lo, Hi         Value
	LoIncl, HiIncl bool
}

// Range returns the predicate lo <= v < hi, the common half-open form.
func Range(lo, hi Value) Pred { return Pred{Lo: lo, Hi: hi, LoIncl: true, HiIncl: false} }

// Open returns the predicate lo < v < hi as used in the paper's examples.
func Open(lo, hi Value) Pred { return Pred{Lo: lo, Hi: hi} }

// Point returns the predicate v == x.
func Point(x Value) Pred { return Pred{Lo: x, Hi: x, LoIncl: true, HiIncl: true} }

// Matches reports whether v satisfies the predicate.
func (p Pred) Matches(v Value) bool {
	if v < p.Lo || (v == p.Lo && !p.LoIncl) {
		return false
	}
	if v > p.Hi || (v == p.Hi && !p.HiIncl) {
		return false
	}
	return true
}

// LowerBound returns the predicate's lower bound in cracker-index boundary
// semantics: the boundary such that all positions at or after it satisfy
// the lower half of the predicate.
func (p Pred) LowerBound() crackindex.Bound {
	return crackindex.Bound{V: p.Lo, Incl: p.LoIncl}
}

// UpperBound returns the predicate's upper bound in boundary semantics: the
// boundary such that all positions at or after it violate the upper half.
func (p Pred) UpperBound() crackindex.Bound {
	if p.HiIncl {
		return crackindex.Bound{V: p.Hi, Incl: false} // non-qualifying: v > Hi
	}
	return crackindex.Bound{V: p.Hi, Incl: true} // non-qualifying: v >= Hi
}

func (p Pred) String() string {
	lo, hi := "<", "<"
	if p.LoIncl {
		lo = "<="
	}
	if p.HiIncl {
		hi = "<="
	}
	return fmt.Sprintf("%d%sA%s%d", p.Lo, lo, hi, p.Hi)
}

// Column is a base column: attribute values in tuple insertion order. The
// key column is virtual — the key of Vals[i] is i.
type Column struct {
	Name string
	Vals []Value
}

// NewColumn returns a column with the given values (not copied).
func NewColumn(name string, vals []Value) *Column { return &Column{Name: name, Vals: vals} }

// Len returns the number of tuples.
func (c *Column) Len() int { return len(c.Vals) }

// Relation is a named set of aligned base columns. All columns have equal
// length; position i across all columns forms relational tuple i.
type Relation struct {
	Name  string
	Order []string // attribute order, for stable iteration
	cols  map[string]*Column
}

// NewRelation returns an empty relation with the given attribute names.
func NewRelation(name string, attrs ...string) *Relation {
	r := &Relation{Name: name, cols: make(map[string]*Column, len(attrs))}
	for _, a := range attrs {
		r.Order = append(r.Order, a)
		r.cols[a] = NewColumn(a, nil)
	}
	return r
}

// Build constructs a relation of n rows where gen(attr, row) supplies each
// value. Attribute order follows attrs.
func Build(name string, n int, attrs []string, gen func(attr string, row int) Value) *Relation {
	r := NewRelation(name, attrs...)
	for _, a := range attrs {
		col := r.cols[a]
		col.Vals = make([]Value, n)
		for i := 0; i < n; i++ {
			col.Vals[i] = gen(a, i)
		}
	}
	return r
}

// Column returns the named column, or nil if absent.
func (r *Relation) Column(name string) *Column { return r.cols[name] }

// MustColumn returns the named column and panics if it does not exist.
func (r *Relation) MustColumn(name string) *Column {
	c := r.cols[name]
	if c == nil {
		panic(fmt.Sprintf("store: relation %q has no column %q", r.Name, name))
	}
	return c
}

// NumRows returns the number of tuples in the relation.
func (r *Relation) NumRows() int {
	if len(r.Order) == 0 {
		return 0
	}
	return r.cols[r.Order[0]].Len()
}

// AppendRow appends one tuple; vals must follow attribute order.
func (r *Relation) AppendRow(vals ...Value) {
	if len(vals) != len(r.Order) {
		panic("store: AppendRow arity mismatch")
	}
	for i, a := range r.Order {
		c := r.cols[a]
		c.Vals = append(c.Vals, vals[i])
	}
}

// DeleteRows removes the tuples at the given positions (keys). Positions are
// interpreted against the current layout; duplicates are ignored. This is
// the baseline engine's eager delete — cracking engines keep pending
// deletions instead.
func (r *Relation) DeleteRows(positions []int) {
	if len(positions) == 0 {
		return
	}
	drop := make(map[int]bool, len(positions))
	for _, p := range positions {
		drop[p] = true
	}
	for _, a := range r.Order {
		c := r.cols[a]
		out := c.Vals[:0]
		for i, v := range c.Vals {
			if !drop[i] {
				out = append(out, v)
			}
		}
		c.Vals = out
	}
}

// Select returns, in ascending key order, the positions of tuples in column
// col whose value matches p. This is the plain column-store select: a full
// scan that preserves insertion order (Section 2.1).
func Select(col *Column, p Pred) []int {
	var out []int
	for i, v := range col.Vals {
		if p.Matches(v) {
			out = append(out, i)
		}
	}
	return out
}

// SelectCount returns the number of matching tuples without materializing
// positions.
func SelectCount(col *Column, p Pred) int {
	n := 0
	for _, v := range col.Vals {
		if p.Matches(v) {
			n++
		}
	}
	return n
}

// Reconstruct fetches col values at the given positions, in the given order
// (operator reconstruct(A,r) of Section 2.1). If positions are ascending the
// access pattern is sequential/cache-friendly; otherwise it is random.
func Reconstruct(col *Column, positions []int) []Value {
	out := make([]Value, len(positions))
	for i, p := range positions {
		out[i] = col.Vals[p]
	}
	return out
}

// JoinPair is one match produced by Join: positions into the left and right
// inputs.
type JoinPair struct{ L, R int }

// Join performs a hash join between the values of two position lists over
// their columns: it matches lVals[i] == rVals[j] where lVals/rVals are the
// reconstructed values at lPos/rPos. Tuple order is preserved for the outer
// (left) input only, as in MonetDB's join (Section 2.1).
func Join(lVals, rVals []Value) []JoinPair {
	ht := make(map[Value][]int, len(rVals))
	for j, v := range rVals {
		ht[v] = append(ht[v], j)
	}
	var out []JoinPair
	for i, v := range lVals {
		for _, j := range ht[v] {
			out = append(out, JoinPair{L: i, R: j})
		}
	}
	return out
}

// Group is one group-by result: the shared value and member positions.
type Group struct {
	Key     Value
	Members []int
}

// GroupBy groups the given values (parallel to positions 0..len-1) and
// returns groups sorted by key. Group-by does not preserve tuple order
// (Section 2.1) — members are in input order within each group, but group
// emission order is by key.
func GroupBy(vals []Value) []Group {
	m := make(map[Value][]int)
	for i, v := range vals {
		m[v] = append(m[v], i)
	}
	out := make([]Group, 0, len(m))
	for k, mem := range m {
		out = append(out, Group{Key: k, Members: mem})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// OrderBy returns a permutation of 0..len(vals)-1 that sorts vals ascending.
// The sort is stable so ties keep input order.
func OrderBy(vals []Value) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	return idx
}

// Max returns the maximum of vals; ok is false when vals is empty.
func Max(vals []Value) (m Value, ok bool) {
	if len(vals) == 0 {
		return 0, false
	}
	m = vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m, true
}

// Min returns the minimum of vals; ok is false when vals is empty.
func Min(vals []Value) (m Value, ok bool) {
	if len(vals) == 0 {
		return 0, false
	}
	m = vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m, true
}

// Sum returns the sum of vals.
func Sum(vals []Value) Value {
	var s Value
	for _, v := range vals {
		s += v
	}
	return s
}

// Mix64 is the splitmix64 finalizer: a cheap, well-distributed integer
// hash shared by value-to-shard routing and deterministic pivot sampling.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
