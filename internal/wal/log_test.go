package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"crackstore/internal/store"
)

// memFile is an in-memory File with switchable failure modes.
type memFile struct {
	mu      sync.Mutex
	buf     []byte
	synced  int
	failNow error // next op fails with this
}

func (m *memFile) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failNow != nil {
		err := m.failNow
		// Model a torn write: half the buffer lands.
		m.buf = append(m.buf, p[:len(p)/2]...)
		return 0, err
	}
	m.buf = append(m.buf, p...)
	return len(p), nil
}

func (m *memFile) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failNow != nil {
		return m.failNow
	}
	m.synced = len(m.buf)
	return nil
}

func (m *memFile) Close() error { return nil }

func TestLogAppendAndGroupCommit(t *testing.T) {
	mf := &memFile{}
	l := NewLog(mf, 0, Options{Sync: SyncGroup})
	const writers = 8
	const each = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append(Record{Type: RecDelete, Keys: []int{w*1000 + i}}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*each {
		t.Fatalf("appends=%d want %d", st.Appends, writers*each)
	}
	// Every record was acked, so every record must be inside the synced
	// prefix.
	if int64(mf.synced) != l.Size() {
		t.Fatalf("synced=%d size=%d: acked records not durable", mf.synced, l.Size())
	}
	n := 0
	valid, err := Scan(mf.buf, func(int64, Record) error { n++; return nil })
	if err != nil || valid != int64(len(mf.buf)) || n != writers*each {
		t.Fatalf("scan: valid=%d/%d recs=%d err=%v", valid, len(mf.buf), n, err)
	}
	if st.Fsyncs > st.Appends {
		t.Fatalf("fsyncs=%d exceed appends=%d", st.Fsyncs, st.Appends)
	}
	t.Logf("appends=%d fsyncs=%d groupcommits=%d", st.Appends, st.Fsyncs, st.GroupCommits)
}

func TestLogPoisonOnWriteError(t *testing.T) {
	mf := &memFile{}
	l := NewLog(mf, 0, Options{Sync: SyncAlways})
	if err := l.Append(Record{Type: RecCheckpoint, Seq: 1}); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	boom := errors.New("boom")
	mf.failNow = boom
	if err := l.Append(Record{Type: RecDelete, Keys: []int{1}}); err == nil {
		t.Fatal("append over failing file succeeded")
	}
	mf.failNow = nil
	// Sticky: the storage healed but the log must keep refusing, because
	// the durable prefix is unknowable after the failure.
	if err := l.Append(Record{Type: RecDelete, Keys: []int{2}}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison: %v, want ErrPoisoned", err)
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after poison")
	}
	// The torn half-record in the buffer must scan as a torn tail, leaving
	// the pre-failure record intact.
	n := 0
	if _, err := Scan(mf.buf, func(int64, Record) error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("post-poison image: recs=%d err=%v, want 1 intact record", n, err)
	}
}

func TestLogPoisonOnSyncError(t *testing.T) {
	mf := &memFile{}
	l := NewLog(mf, 0, Options{Sync: SyncGroup})
	end, err := l.AppendBuffered(Record{Type: RecCheckpoint, Seq: 1})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	mf.failNow = errors.New("fsync boom")
	if err := l.WaitDurable(end); err == nil {
		t.Fatal("WaitDurable succeeded over failing fsync")
	}
	if _, err := l.AppendBuffered(Record{Type: RecCheckpoint, Seq: 2}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after fsync poison: %v", err)
	}
}

func TestOpenLogTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	var buf []byte
	buf = AppendRecord(buf, Record{Type: RecDelete, Keys: []int{5}})
	whole := len(buf)
	buf = AppendRecord(buf, Record{Type: RecDelete, Keys: []int{6}})
	torn := buf[:whole+7] // mid-header tear
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	l, tornBytes, err := OpenLog(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if tornBytes != 7 {
		t.Fatalf("torn=%d want 7", tornBytes)
	}
	if l.Size() != int64(whole) {
		t.Fatalf("size=%d want %d", l.Size(), whole)
	}
	// Appending after truncation must continue at the valid end.
	if err := l.Append(Record{Type: RecDelete, Keys: []int{7}}); err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Close()
	b, _ := os.ReadFile(path)
	var keys []int
	valid, err := Scan(b, func(_ int64, rec Record) error { keys = append(keys, rec.Keys...); return nil })
	if err != nil || valid != int64(len(b)) {
		t.Fatalf("reread: valid=%d/%d err=%v", valid, len(b), err)
	}
	if len(keys) != 2 || keys[0] != 5 || keys[1] != 7 {
		t.Fatalf("keys=%v want [5 7]", keys)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cp := &Checkpoint{
		Seq:   3,
		Name:  "R",
		Attrs: []string{"A", "B"},
		Cols:  [][]Value{{1, 2, 3}, {10, 20, 30}},
		Dead:  []int{1},
		Tape: []Record{
			{Type: RecCrack, Preds: []PredRec{{Attr: "A", Pred: store.Range(0, 2)}}, Projs: []string{"B"}},
		},
	}
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Seq != 3 || got.Name != "R" || len(got.Attrs) != 2 || len(got.Cols) != 2 ||
		len(got.Cols[0]) != 3 || got.Cols[1][2] != 30 || len(got.Dead) != 1 || len(got.Tape) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Tape[0].Preds[0].Attr != "A" {
		t.Fatalf("tape mismatch: %+v", got.Tape[0])
	}

	// Overwrite must be atomic-replace: a second checkpoint fully wins.
	cp.Seq = 4
	cp.Dead = nil
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	got, err = LoadCheckpoint(dir)
	if err != nil || got.Seq != 4 || len(got.Dead) != 0 {
		t.Fatalf("rewrite load: %+v err=%v", got, err)
	}
}

func TestLoadCheckpointMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if cp, err := LoadCheckpoint(dir); cp != nil || err != nil {
		t.Fatalf("missing: cp=%v err=%v, want nil,nil", cp, err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}
}

func TestCleanMarker(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok := TakeCleanMarker(dir); ok {
		t.Fatal("marker present in empty dir")
	}
	if err := WriteCleanMarker(dir, 7, 4096); err != nil {
		t.Fatalf("write: %v", err)
	}
	seq, size, ok := TakeCleanMarker(dir)
	if !ok || seq != 7 || size != 4096 {
		t.Fatalf("take: seq=%d size=%d ok=%v", seq, size, ok)
	}
	// Taking consumes: a second open after a crash must not look clean.
	if _, _, ok := TakeCleanMarker(dir); ok {
		t.Fatal("marker survived TakeCleanMarker")
	}
}

func TestSegmentPathsAndCleanup(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(0); seq < 3; seq++ {
		if err := os.WriteFile(SegmentPath(dir, seq), []byte{}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	RemoveSegmentsExcept(dir, 2)
	for seq := uint64(0); seq < 2; seq++ {
		if _, err := os.Stat(SegmentPath(dir, seq)); !os.IsNotExist(err) {
			t.Fatalf("segment %d survived cleanup", seq)
		}
	}
	if _, err := os.Stat(SegmentPath(dir, 2)); err != nil {
		t.Fatalf("kept segment missing: %v", err)
	}
}
