package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"crackstore/internal/store"
)

// Value aliases the kernel value type.
type Value = store.Value

// RecType identifies one write-ahead-log record kind.
type RecType byte

// Record types. The enum is covered by crackvet's exhaustive checker: a
// switch over RecType must either handle every constant or carry a default
// arm, so adding a record kind cannot silently fall through a replay loop.
const (
	// RecInsert is an acked insert batch: Width values per tuple, in
	// relation attribute order, replayed as sequential appends (keys are
	// assigned by position, so log order reproduces the original keys).
	RecInsert RecType = 1
	// RecDelete is an acked delete batch of tuple keys.
	RecDelete RecType = 2
	// RecCrack is one entry of the crack tape: the predicate/projection
	// shape of a query that physically reorganized the store. Replaying the
	// tape re-runs those queries against the recovered base data, which
	// re-cracks the same pieces — the reorganization investment survives
	// the restart. Crack records are redo-only optimization: losing an
	// unsynced tail of the tape costs warmth, never correctness.
	RecCrack RecType = 3
	// RecCheckpoint marks the head of a fresh log segment with the
	// checkpoint sequence number that opened it, so recovery can detect a
	// segment that does not belong to the checkpoint next to it.
	RecCheckpoint RecType = 4
)

func (t RecType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecCrack:
		return "crack"
	case RecCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("rectype(%d)", byte(t))
}

// PredRec is one attribute predicate of a crack-tape record.
type PredRec struct {
	Attr string
	Pred store.Pred
}

// Record is one decoded WAL record. Only the fields of its Type are
// meaningful.
type Record struct {
	Type RecType

	// RecInsert: Width values per tuple, len(Vals)/Width tuples.
	Width int
	Vals  []Value

	// RecDelete: tuple keys.
	Keys []int

	// RecCrack: the reorganizing query's shape.
	Preds       []PredRec
	Projs       []string
	Disjunctive bool

	// RecCheckpoint: the checkpoint sequence that opened this segment.
	Seq uint64
}

// Framing constants. The header reuses the internal/wire idiom: the
// payload length travels twice — once plain, once XOR-masked — so a reader
// validates the length before trusting it, and a CRC-32 of the payload
// turns silent byte corruption into a detectable torn tail instead of a
// wrong replay. An all-zero header (common torn-write shape) never
// validates because of the mask.
const (
	frameHeader = 12
	lenEcho     = 0x5AC3A55A

	// MaxRecord caps a single record frame. A length prefix above it is
	// treated as a torn tail, so a corrupt header cannot make recovery
	// allocate gigabytes.
	MaxRecord = 16 << 20
)

// Codec errors.
var (
	// ErrCorrupt reports a CRC-valid payload that does not decode cleanly:
	// not a torn tail (the checksum passed) but a version skew or a bug,
	// which recovery must refuse rather than guess at.
	ErrCorrupt = errors.New("wal: corrupt record payload")
)

// AppendPayload appends the frameless encoding of rec to dst.
func AppendPayload(dst []byte, rec Record) []byte {
	dst = append(dst, byte(rec.Type))
	switch rec.Type {
	case RecInsert:
		dst = binary.AppendUvarint(dst, uint64(rec.Width))
		dst = binary.AppendUvarint(dst, uint64(len(rec.Vals)))
		for _, v := range rec.Vals {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case RecDelete:
		dst = binary.AppendUvarint(dst, uint64(len(rec.Keys)))
		for _, k := range rec.Keys {
			dst = binary.AppendUvarint(dst, uint64(k))
		}
	case RecCrack:
		dst = binary.AppendUvarint(dst, uint64(len(rec.Preds)))
		for _, p := range rec.Preds {
			dst = appendString(dst, p.Attr)
			dst = binary.AppendVarint(dst, p.Pred.Lo)
			dst = binary.AppendVarint(dst, p.Pred.Hi)
			var flags byte
			if p.Pred.LoIncl {
				flags |= 1
			}
			if p.Pred.HiIncl {
				flags |= 2
			}
			dst = append(dst, flags)
		}
		dst = binary.AppendUvarint(dst, uint64(len(rec.Projs)))
		for _, s := range rec.Projs {
			dst = appendString(dst, s)
		}
		if rec.Disjunctive {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case RecCheckpoint:
		dst = binary.AppendUvarint(dst, rec.Seq)
	default:
		panic(fmt.Sprintf("wal: encoding unknown record type %d", rec.Type))
	}
	return dst
}

// AppendRecord appends the framed encoding of rec to dst.
func AppendRecord(dst []byte, rec Record) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, frameHeader)...)
	dst = AppendPayload(dst, rec)
	payload := dst[start+frameHeader:]
	n := uint32(len(payload))
	binary.BigEndian.PutUint32(dst[start:], n)
	binary.BigEndian.PutUint32(dst[start+4:], n^lenEcho)
	binary.BigEndian.PutUint32(dst[start+8:], crc32.ChecksumIEEE(payload))
	return dst
}

// DecodeRecord decodes a frameless record payload. Decoding is strict:
// every read is bounds-checked, trailing garbage is an error, and slice
// preallocations are capped by the bytes actually remaining, so an
// adversarial payload can neither panic the decoder nor force a large
// allocation (FuzzRecordCodec pins both properties).
func DecodeRecord(payload []byte) (Record, error) {
	r := reader{b: payload}
	rec := Record{Type: RecType(r.u8())}
	switch rec.Type {
	case RecInsert:
		rec.Width = int(r.uvarint())
		n := int(r.uvarint())
		if rec.Width <= 0 || n < 0 || n%max(rec.Width, 1) != 0 {
			return Record{}, ErrCorrupt
		}
		rec.Vals = r.vals(n)
	case RecDelete:
		n := int(r.uvarint())
		// Each key costs at least one byte, so the remaining bytes bound
		// the preallocation.
		if n < 0 || n > r.remaining() {
			return Record{}, ErrCorrupt
		}
		rec.Keys = make([]int, 0, n)
		for i := 0; i < n; i++ {
			rec.Keys = append(rec.Keys, int(r.uvarint()))
		}
	case RecCrack:
		n := int(r.uvarint())
		if n < 0 || n > r.remaining() {
			return Record{}, ErrCorrupt
		}
		rec.Preds = make([]PredRec, 0, n)
		for i := 0; i < n; i++ {
			var p PredRec
			p.Attr = r.str()
			p.Pred.Lo = r.varint()
			p.Pred.Hi = r.varint()
			flags := r.u8()
			p.Pred.LoIncl = flags&1 != 0
			p.Pred.HiIncl = flags&2 != 0
			if flags&^byte(3) != 0 {
				return Record{}, ErrCorrupt
			}
			rec.Preds = append(rec.Preds, p)
		}
		m := int(r.uvarint())
		if m < 0 || m > r.remaining() {
			return Record{}, ErrCorrupt
		}
		rec.Projs = make([]string, 0, m)
		for i := 0; i < m; i++ {
			rec.Projs = append(rec.Projs, r.str())
		}
		switch r.u8() {
		case 0:
		case 1:
			rec.Disjunctive = true
		default:
			return Record{}, ErrCorrupt
		}
	case RecCheckpoint:
		rec.Seq = r.uvarint()
	default:
		return Record{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, byte(rec.Type))
	}
	if r.err || r.remaining() != 0 {
		return Record{}, ErrCorrupt
	}
	return rec, nil
}

// Scan iterates the complete records of b, calling fn for each with the
// record's starting offset. It returns the length of the longest valid
// record prefix: a torn or corrupted tail — truncated header, length echo
// mismatch, missing payload bytes, checksum failure — ends the scan there
// without error, which is exactly the crash-recovery contract (nothing
// past a torn record can be trusted). A CRC-valid record that fails strict
// decoding is a hard error, not a torn tail. fn's error aborts the scan.
func Scan(b []byte, fn func(off int64, rec Record) error) (int64, error) {
	off := 0
	for {
		if len(b)-off < frameHeader {
			return int64(off), nil
		}
		n := binary.BigEndian.Uint32(b[off:])
		echo := binary.BigEndian.Uint32(b[off+4:])
		if n^lenEcho != echo {
			return int64(off), nil
		}
		if n > MaxRecord || off+frameHeader+int(n) > len(b) {
			return int64(off), nil
		}
		payload := b[off+frameHeader : off+frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[off+8:]) {
			return int64(off), nil
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return int64(off), fmt.Errorf("wal: record at offset %d: %w", off, err)
		}
		if err := fn(int64(off), rec); err != nil {
			return int64(off), err
		}
		off += frameHeader + int(n)
	}
}

// ---------------------------------------------------------------------------
// Encoding helpers.

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// reader is a strict bounds-checked decode cursor; any overrun latches err
// and makes every later read return zero values.
type reader struct {
	b   []byte
	off int
	err bool
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) fail() { r.err = true }

func (r *reader) u8() byte {
	if r.err || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) str() string {
	n := int(r.uvarint())
	if r.err || n < 0 || n > r.remaining() {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// vals decodes n fixed 8-byte little-endian values; the byte cost is
// checked before the slice is allocated.
func (r *reader) vals(n int) []Value {
	if r.err || n < 0 || n*8 > r.remaining() {
		r.fail()
		return nil
	}
	out := make([]Value, n)
	for i := range out {
		out[i] = Value(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out
}
