package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"crackstore/internal/obs"
)

// SyncMode selects when an append becomes durable.
type SyncMode int

const (
	// SyncGroup (the default) makes every acked append wait for an fsync
	// covering it, but lets concurrent appends share fsyncs: one waiter
	// drives the Sync syscall while the others piggyback on its barrier.
	// Same loss guarantee as SyncAlways, far fewer syscalls under load.
	SyncGroup SyncMode = iota
	// SyncAlways fsyncs eagerly after every append. Under concurrency it
	// degenerates to group commit anyway (a sync in flight covers queued
	// appends), so the difference from SyncGroup is only visible for a
	// strictly serial writer.
	SyncAlways
	// SyncNone never waits: appends are acked after the OS write alone.
	// A crash may lose the acked tail — this mode is excluded from the
	// zero-acked-write-loss guarantee and exists for bulk loads and
	// benchmark baselines.
	SyncNone
)

func (m SyncMode) String() string {
	switch m {
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("syncmode(%d)", int(m))
}

// ParseSyncMode parses the -fsync flag values.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "group":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync mode %q (want group, always, or none)", s)
}

// File is the storage a Log writes to: *os.File satisfies it, and the
// faultfs wrapper in internal/faultnet injects torn writes, short writes,
// and fsync errors through the same seam.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures a Log.
type Options struct {
	Sync SyncMode
	// Wrap, if set, wraps the opened file before use (fault injection).
	Wrap func(File) File
}

// ErrPoisoned reports an append refused because an earlier write or fsync
// failed. After a storage error the log's durable prefix is unknowable, so
// the log stops acking permanently (the PostgreSQL fsync-gate lesson:
// retrying fsync after failure silently drops the dirty pages), and the
// caller must recover from the on-disk state.
var ErrPoisoned = errors.New("wal: log poisoned by earlier storage error")

// Stats counts log activity.
type Stats struct {
	Appends int64 // records appended
	Bytes   int64 // bytes written
	Fsyncs  int64 // Sync syscalls issued
	// GroupCommits counts appends whose durability wait was satisfied by
	// an fsync another append drove — the group-commit win.
	GroupCommits int64
}

// Log is a CRC-framed append-only record log with group-commit fsync.
type Log struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast when synced advances or err latches

	f    File
	mode SyncMode

	written int64 // bytes handed to f.Write without error
	synced  int64 // bytes covered by a successful Sync
	syncing bool  // a waiter is inside f.Sync

	err error // sticky first storage error

	stats Stats

	// fsyncHist, when set via ObserveFsync, receives the latency of every
	// Sync syscall (observability bridge). An atomic pointer so it can be
	// attached to a live log; nil costs one load per fsync.
	fsyncHist atomic.Pointer[obs.Histogram]

	buf []byte // encode scratch, reused under mu
}

// ObserveFsync attaches a latency histogram to the log's fsync path:
// every subsequent Sync syscall observes its wall time. Safe to call on
// a live log; pass nil to detach.
func (l *Log) ObserveFsync(h *obs.Histogram) { l.fsyncHist.Store(h) }

// OpenLog opens (creating if needed) the log file at path, truncates any
// torn tail to the longest valid record prefix, and positions appends at
// the end. The second return is the number of torn-tail bytes discarded.
func OpenLog(path string, opts Options) (*Log, int64, error) {
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, 0, err
	}
	valid, err := Scan(b, func(int64, Record) error { return nil })
	if err != nil {
		return nil, 0, err
	}
	torn := int64(len(b)) - valid
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	if torn > 0 {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	l := newLog(f, valid, opts)
	return l, torn, nil
}

// NewLog wraps an already-positioned file whose first size bytes are valid
// records. Tests use it to drive in-memory and fault-injecting files.
func NewLog(f File, size int64, opts Options) *Log {
	return newLog(f, size, opts)
}

func newLog(f File, size int64, opts Options) *Log {
	if opts.Wrap != nil {
		f = opts.Wrap(f)
	}
	l := &Log{f: f, mode: opts.Sync, written: size, synced: size}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// AppendBuffered frames and writes rec under the log lock, returning the
// log size after the record. The record is in the OS buffer but not yet
// durable; pass the returned end to WaitDurable before acking. Callers
// that hold their own ordering lock across AppendBuffered get log order ==
// apply order, which is what makes replay reproduce their state.
func (l *Log) AppendBuffered(rec Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, ErrPoisoned
	}
	l.buf = AppendRecord(l.buf[:0], rec)
	n, err := l.f.Write(l.buf)
	if err != nil {
		// A short or torn write leaves bytes past l.written that recovery
		// will scan; they are at worst a torn tail (the frame CRC cannot
		// validate a half-written record) so the on-disk image stays
		// recoverable — but this log can no longer know its durable end.
		l.poisonLocked(fmt.Errorf("wal: append write: %w", err))
		return 0, l.err
	}
	if n != len(l.buf) {
		l.poisonLocked(fmt.Errorf("wal: append short write: %d of %d bytes", n, len(l.buf)))
		return 0, l.err
	}
	l.written += int64(len(l.buf))
	l.stats.Appends++
	l.stats.Bytes += int64(len(l.buf))
	return l.written, nil
}

// WaitDurable blocks until the log is durable through offset end (or
// returns immediately under SyncNone). Concurrent waiters elect one to
// drive the Sync syscall; the rest sleep on the condvar and are covered by
// whatever sync lands past their offset — group commit.
func (l *Log) WaitDurable(end int64) error {
	if l.mode == SyncNone {
		return nil
	}
	piggybacked := false
	for {
		l.mu.Lock()
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return err
		}
		if l.synced >= end {
			if piggybacked {
				l.stats.GroupCommits++
			}
			l.mu.Unlock()
			return nil
		}
		if l.syncing {
			piggybacked = true
			l.cond.Wait()
			l.mu.Unlock()
			continue
		}
		l.syncing = true
		// Snapshot the written frontier: the fsync covers every byte
		// written before the syscall starts, including appends that landed
		// while we were waiting.
		target := l.written
		l.mu.Unlock()
		l.syncOnce(target)
	}
}

// syncOnce drives one Sync syscall (caller set l.syncing) and publishes
// the outcome.
func (l *Log) syncOnce(target int64) {
	var t0 time.Time
	h := l.fsyncHist.Load()
	if h != nil {
		t0 = time.Now()
	}
	err := l.f.Sync()
	if h != nil {
		h.Observe(time.Since(t0))
	}
	l.mu.Lock()
	l.syncing = false
	l.stats.Fsyncs++
	if err != nil {
		l.poisonLocked(fmt.Errorf("wal: fsync: %w", err))
	} else if target > l.synced {
		l.synced = target
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Append writes rec and waits for durability per the sync mode. It is the
// one-call form for callers without their own ordering lock.
func (l *Log) Append(rec Record) error {
	end, err := l.AppendBuffered(rec)
	if err != nil {
		return err
	}
	return l.WaitDurable(end)
}

// Sync forces durability of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	end := l.written
	l.mu.Unlock()
	if end == 0 {
		return l.Err()
	}
	// WaitDurable honors SyncNone by returning immediately; a manual Sync
	// should flush even then (clean shutdown under -fsync none).
	if l.mode == SyncNone {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.err != nil {
			return l.err
		}
		if err := l.f.Sync(); err != nil {
			l.poisonLocked(fmt.Errorf("wal: fsync: %w", err))
			return l.err
		}
		l.stats.Fsyncs++
		if end > l.synced {
			l.synced = end
		}
		return nil
	}
	return l.WaitDurable(end)
}

// Size returns the log size in bytes (written, not necessarily synced).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// Err returns the sticky storage error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close closes the underlying file without syncing (callers that need a
// durable close call Sync first). It waits out any fsync in flight, so a
// concurrent WaitDurable can never have its syscall yanked to EBADF —
// which would poison the log and fail acks whose data is actually durable.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	return l.f.Close()
}

func (l *Log) poisonLocked(err error) {
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
}
