package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// File names inside a durable data directory.
const (
	checkpointFile = "checkpoint"
	cleanFile      = "CLEAN"
	segmentPrefix  = "wal."
	segmentSuffix  = ".log"
)

// checkpointVersion guards the checkpoint payload layout.
const checkpointVersion = 1

// Checkpoint is a full materialized snapshot of a durable store: the base
// columns, the tombstoned keys, and the crack tape accumulated since the
// relation was seeded. Recovery rebuilds the relation from Cols/Dead and
// replays Tape to re-crack the same layout, then applies the WAL segment
// tail on top.
type Checkpoint struct {
	Seq   uint64
	Name  string   // relation name
	Attrs []string // attribute order
	Cols  [][]Value
	Dead  []int    // deleted tuple keys (tombstones), in delete order
	Tape  []Record // RecCrack records, in query order
}

// SegmentPath returns the WAL segment file for checkpoint sequence seq.
// Each checkpoint opens a fresh segment, so "which WAL bytes postdate the
// checkpoint" is answered by file identity, never by offsets into a shared
// file — offsets would be ambiguous after a crash that loses unsynced WAL
// tail while the (separately fsynced) checkpoint survives.
func SegmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix))
}

// RemoveSegmentsExcept deletes every WAL segment in dir other than keep's.
// Best-effort: a leftover segment wastes disk but cannot corrupt recovery,
// since recovery only ever reads the segment named by the checkpoint.
func RemoveSegmentsExcept(dir string, keep uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keepName := filepath.Base(SegmentPath(dir, keep))
	for _, e := range ents {
		name := e.Name()
		if name == keepName || !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		os.Remove(filepath.Join(dir, name))
	}
}

// WriteCheckpoint atomically replaces dir's checkpoint: encode, write to a
// temp file, fsync it, rename over the checkpoint name, fsync the
// directory. A crash at any point leaves either the old checkpoint or the
// new one, never a torn hybrid (the single-frame CRC would expose one
// anyway).
func WriteCheckpoint(dir string, cp *Checkpoint) error {
	payload := appendCheckpointPayload(nil, cp)
	framed := make([]byte, 0, frameHeader+len(payload))
	framed = append(framed, make([]byte, frameHeader)...)
	framed = append(framed, payload...)
	n := uint32(len(payload))
	binary.BigEndian.PutUint32(framed, n)
	binary.BigEndian.PutUint32(framed[4:], n^lenEcho)
	binary.BigEndian.PutUint32(framed[8:], crc32.ChecksumIEEE(payload))

	tmp := filepath.Join(dir, checkpointFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(framed); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// LoadCheckpoint reads dir's checkpoint. A missing file returns (nil, nil)
// — a fresh directory. Any framing or decode failure is a hard error: the
// checkpoint is written atomically, so a bad one is not a torn tail to
// shrug off but corruption that recovery must surface.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	b, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(b) < frameHeader {
		return nil, fmt.Errorf("wal: checkpoint too short: %d bytes", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	if n^lenEcho != binary.BigEndian.Uint32(b[4:]) {
		return nil, fmt.Errorf("wal: checkpoint header echo mismatch")
	}
	if int64(n) != int64(len(b)-frameHeader) {
		return nil, fmt.Errorf("wal: checkpoint length %d does not match file body %d", n, len(b)-frameHeader)
	}
	payload := b[frameHeader:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[8:]) {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	return decodeCheckpointPayload(payload)
}

func appendCheckpointPayload(dst []byte, cp *Checkpoint) []byte {
	dst = append(dst, checkpointVersion)
	dst = binary.AppendUvarint(dst, cp.Seq)
	dst = appendString(dst, cp.Name)
	dst = binary.AppendUvarint(dst, uint64(len(cp.Attrs)))
	for _, a := range cp.Attrs {
		dst = appendString(dst, a)
	}
	rows := 0
	if len(cp.Cols) > 0 {
		rows = len(cp.Cols[0])
	}
	dst = binary.AppendUvarint(dst, uint64(rows))
	for _, col := range cp.Cols {
		if len(col) != rows {
			panic("wal: checkpoint with ragged columns")
		}
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(cp.Dead)))
	for _, k := range cp.Dead {
		dst = binary.AppendUvarint(dst, uint64(k))
	}
	dst = binary.AppendUvarint(dst, uint64(len(cp.Tape)))
	for _, rec := range cp.Tape {
		p := AppendPayload(nil, rec)
		dst = binary.AppendUvarint(dst, uint64(len(p)))
		dst = append(dst, p...)
	}
	return dst
}

func decodeCheckpointPayload(payload []byte) (*Checkpoint, error) {
	r := reader{b: payload}
	if v := r.u8(); v != checkpointVersion {
		return nil, fmt.Errorf("wal: checkpoint version %d (want %d)", v, checkpointVersion)
	}
	cp := &Checkpoint{Seq: r.uvarint(), Name: r.str()}
	nattrs := int(r.uvarint())
	if r.err || nattrs < 0 || nattrs > r.remaining() {
		return nil, ErrCorrupt
	}
	cp.Attrs = make([]string, 0, nattrs)
	for i := 0; i < nattrs; i++ {
		cp.Attrs = append(cp.Attrs, r.str())
	}
	rows := int(r.uvarint())
	if r.err || rows < 0 || nattrs > 0 && rows > r.remaining()/(8*nattrs) {
		return nil, ErrCorrupt
	}
	cp.Cols = make([][]Value, nattrs)
	for i := range cp.Cols {
		cp.Cols[i] = r.vals(rows)
	}
	ndead := int(r.uvarint())
	if r.err || ndead < 0 || ndead > r.remaining() {
		return nil, ErrCorrupt
	}
	cp.Dead = make([]int, 0, ndead)
	for i := 0; i < ndead; i++ {
		cp.Dead = append(cp.Dead, int(r.uvarint()))
	}
	ntape := int(r.uvarint())
	if r.err || ntape < 0 || ntape > r.remaining() {
		return nil, ErrCorrupt
	}
	cp.Tape = make([]Record, 0, ntape)
	for i := 0; i < ntape; i++ {
		n := int(r.uvarint())
		if r.err || n < 0 || n > r.remaining() {
			return nil, ErrCorrupt
		}
		rec, err := DecodeRecord(r.b[r.off : r.off+n])
		if err != nil {
			return nil, err
		}
		r.off += n
		cp.Tape = append(cp.Tape, rec)
	}
	if r.err || r.remaining() != 0 {
		return nil, ErrCorrupt
	}
	return cp, nil
}

// WriteCleanMarker records a clean shutdown: checkpoint seq and the exact
// segment size at close. On the next open, a marker matching the on-disk
// state means recovery can trust the shutdown was orderly (nothing was
// torn, nothing needs the "replayed" label).
func WriteCleanMarker(dir string, seq uint64, walSize int64) error {
	path := filepath.Join(dir, cleanFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%d %d\n", seq, walSize); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(dir)
}

// TakeCleanMarker reads and removes the clean-shutdown marker. ok reports
// whether a parseable marker existed; the marker is removed either way so
// a subsequent crash cannot masquerade as clean.
func TakeCleanMarker(dir string) (seq uint64, walSize int64, ok bool) {
	path := filepath.Join(dir, cleanFile)
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false
	}
	os.Remove(path)
	syncDir(dir)
	if _, err := fmt.Sscanf(string(b), "%d %d", &seq, &walSize); err != nil {
		return 0, 0, false
	}
	return seq, walSize, true
}

// syncDir fsyncs a directory so renames and unlinks inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
