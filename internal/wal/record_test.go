package wal

import (
	"bytes"
	"reflect"
	"testing"

	"crackstore/internal/store"
)

func sampleRecords() []Record {
	return []Record{
		{Type: RecInsert, Width: 3, Vals: []Value{1, 2, 3, 40, 50, 60}},
		{Type: RecInsert, Width: 1, Vals: []Value{-9}},
		{Type: RecDelete, Keys: []int{0, 7, 123456}},
		{Type: RecCrack, Preds: []PredRec{
			{Attr: "A", Pred: store.Pred{Lo: -5, Hi: 100, LoIncl: true}},
			{Attr: "B", Pred: store.Pred{Lo: 3, Hi: 3, LoIncl: true, HiIncl: true}},
		}, Projs: []string{"A", "C"}, Disjunctive: true},
		{Type: RecCrack, Preds: []PredRec{{Attr: "A", Pred: store.Range(10, 20)}}},
		{Type: RecCheckpoint, Seq: 42},
	}
}

// recEqual compares records ignoring nil-vs-empty slice representation.
func recEqual(a, b Record) bool {
	norm := func(r Record) Record {
		if len(r.Vals) == 0 {
			r.Vals = nil
		}
		if len(r.Keys) == 0 {
			r.Keys = nil
		}
		if len(r.Preds) == 0 {
			r.Preds = nil
		}
		if len(r.Projs) == 0 {
			r.Projs = nil
		}
		return r
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		payload := AppendPayload(nil, rec)
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("%v: decode: %v", rec.Type, err)
		}
		if !recEqual(got, rec) {
			t.Fatalf("%v: round trip mismatch:\n got %+v\nwant %+v", rec.Type, got, rec)
		}
	}
}

func TestScanTornTailEveryByte(t *testing.T) {
	recs := sampleRecords()
	var buf []byte
	var bounds []int // buffer offset after each record
	for _, rec := range recs {
		buf = AppendRecord(buf, rec)
		bounds = append(bounds, len(buf))
	}
	for k := 0; k <= len(buf); k++ {
		wantValid := 0
		wantRecs := 0
		for i, b := range bounds {
			if b <= k {
				wantValid = b
				wantRecs = i + 1
			}
		}
		var got []Record
		valid, err := Scan(buf[:k], func(_ int64, rec Record) error {
			got = append(got, rec)
			return nil
		})
		if err != nil {
			t.Fatalf("truncate %d: scan error: %v", k, err)
		}
		if valid != int64(wantValid) || len(got) != wantRecs {
			t.Fatalf("truncate %d: got valid=%d recs=%d, want valid=%d recs=%d",
				k, valid, len(got), wantValid, wantRecs)
		}
		for i, rec := range got {
			if !recEqual(rec, recs[i]) {
				t.Fatalf("truncate %d: record %d mismatch", k, i)
			}
		}
	}
}

func TestScanRejectsCorruptPayload(t *testing.T) {
	// Flip a payload byte and refresh nothing: the CRC must catch it and
	// Scan must stop there (torn tail, not an error).
	buf := AppendRecord(nil, Record{Type: RecDelete, Keys: []int{1, 2}})
	buf = AppendRecord(buf, Record{Type: RecCheckpoint, Seq: 9})
	buf[frameHeader] ^= 0xFF
	n := 0
	valid, err := Scan(buf, func(_ int64, _ Record) error { n++; return nil })
	if err != nil || valid != 0 || n != 0 {
		t.Fatalf("corrupt first record: valid=%d n=%d err=%v, want 0,0,nil", valid, n, err)
	}
}

func TestScanZeroFill(t *testing.T) {
	// An all-zero region (preallocated/torn file tail) must never parse as
	// a record: the masked length echo cannot be satisfied by zeros.
	valid, err := Scan(make([]byte, 4096), func(_ int64, _ Record) error { return nil })
	if err != nil || valid != 0 {
		t.Fatalf("zero fill: valid=%d err=%v, want 0,nil", valid, err)
	}
}

func TestDecodeRejectsOversizeCounts(t *testing.T) {
	// A delete record claiming 2^40 keys in a 3-byte payload must fail
	// cleanly (and, per the fuzz no-large-alloc property, without
	// allocating for the claimed count).
	payload := []byte{byte(RecDelete), 0x80, 0x80, 0x80, 0x80, 0x80, 0x40}
	if _, err := DecodeRecord(payload); err == nil {
		t.Fatal("oversize key count decoded without error")
	}
}

// FuzzRecordCodec pins the codec's safety contract on arbitrary bytes:
// DecodeRecord never panics, and when it accepts a payload, re-encoding
// the decoded record is a fixed point (decode∘encode is the identity on
// decoder outputs, and encode∘decode is the identity on encoder outputs —
// arbitrary accepted inputs may differ from their re-encoding only by
// non-canonical varints, which strictness mostly forbids anyway).
func FuzzRecordCodec(f *testing.F) {
	for _, rec := range sampleRecords() {
		f.Add(AppendPayload(nil, rec))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(RecInsert)})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		enc := AppendPayload(nil, rec)
		rec2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if !recEqual(rec, rec2) {
			t.Fatalf("decode/encode/decode not stable:\n first %+v\nsecond %+v", rec, rec2)
		}
		if enc2 := AppendPayload(nil, rec2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoder not deterministic")
		}
	})
}

// FuzzScanTornTail pins torn-tail truncation: for a log built from fuzzed
// record parameters, truncating at every byte boundary recovers exactly
// the records whose frames are complete — never fewer, never a phantom.
func FuzzScanTornTail(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4))
	f.Add(int64(-77), uint8(1), uint8(9))
	f.Fuzz(func(t *testing.T, v int64, nrec, width uint8) {
		n := int(nrec%6) + 1
		w := int(width%4) + 1
		var buf []byte
		var bounds []int
		for i := 0; i < n; i++ {
			var rec Record
			switch i % 3 {
			case 0:
				vals := make([]Value, w)
				for j := range vals {
					vals[j] = v + Value(i*j)
				}
				rec = Record{Type: RecInsert, Width: w, Vals: vals}
			case 1:
				rec = Record{Type: RecDelete, Keys: []int{i, i * 7}}
			default:
				rec = Record{Type: RecCrack, Preds: []PredRec{{Attr: "A", Pred: store.Range(v, v+Value(i))}}}
			}
			buf = AppendRecord(buf, rec)
			bounds = append(bounds, len(buf))
		}
		for k := 0; k <= len(buf); k++ {
			want := 0
			for _, b := range bounds {
				if b <= k {
					want = b
				}
			}
			valid, err := Scan(buf[:k], func(int64, Record) error { return nil })
			if err != nil {
				t.Fatalf("truncate %d: %v", k, err)
			}
			if valid != int64(want) {
				t.Fatalf("truncate %d: valid=%d want %d", k, valid, want)
			}
		}
	})
}
