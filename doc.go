// Package crackstore is a from-scratch Go implementation of
// "Self-organizing Tuple Reconstruction in Column-stores" (Idreos, Kersten,
// Manegold; SIGMOD 2009): partial sideways cracking and every substrate it
// builds on.
//
// A column-store answers multi-attribute queries by reconstructing tuples
// from per-attribute columns — a join on tuple IDs that dominates query
// cost once selections stop being order-preserving. The paper's answer is
// sideways cracking: auxiliary two-column cracker maps M_AB (attribute A
// alongside attribute B) that are physically reorganized a little more by
// every query, so qualifying tuples of all needed attributes end up
// clustered and positionally aligned, making reconstruction a slice rather
// than a scattered gather. Partial sideways cracking materializes those
// maps lazily, chunk by chunk, so the structure adapts to the workload
// under a storage budget.
//
// The package exposes six interchangeable engines over the same relation
// and query model:
//
//	e := crackstore.Open(crackstore.Sideways, rel)
//	res, cost := e.Query(crackstore.Query{
//	    Preds: []crackstore.AttrPred{{Attr: "A", Pred: crackstore.Range(10, 20)}},
//	    Projs: []string{"B", "C"},
//	})
//
// Engines: Scan (plain column-store), SelCrack (selection cracking,
// CIDR 2007), Presorted (presorted copies), Sideways (Section 3),
// PartialSideways (Section 4) and RowStore (an N-ary reference engine).
// All support the same insert/delete API; cracking engines merge updates
// lazily with the Ripple algorithm (SIGMOD 2007).
//
// All cracking engines share one kernel (internal/crack). A range selection
// whose bounds fall into the same uncracked piece — always the case for the
// first query on a cold column — is resolved by a single-pass crack-in-three
// partition rather than two crack-in-two traversals, and pending insertions
// are merged in batches (one boundary walk and one piece-wise ripple per
// batch instead of one per tuple). Both fast paths are deterministic pure
// functions of (piece contents, operation), which preserves the alignment
// invariant sideways cracking depends on: maps that replay the same cracker
// tape stay physically identical.
//
// # Concurrent serving
//
// Cracking makes reads into writes, so the paper's engines assume a single
// query executor. This package adds a two-phase (probe/execute) protocol
// on top: every engine can report, read-only, whether a query would
// physically reorganize anything (Engine.Probe) and can execute
// reorganization-free queries without mutating state (Engine.QueryRO).
// Concurrent wraps an engine with a read-write lock built on that
// protocol — aligned repeat queries run in parallel under the shared
// lock, and only queries that must crack, merge pending updates, or
// maintain auxiliary structures serialize behind the exclusive lock
// (double-checked, so one crack pays for every waiting reader):
//
//	shared := crackstore.Concurrent(e)   // safe for any number of goroutines
//	srv := crackstore.Serve(shared, crackstore.ServeOptions{Workers: 8})
//	res, cost, err := srv.Do(q)          // from any client goroutine
//
// Serve adds a bounded multi-client executor with per-query latency
// capture and optional admission batching of same-attribute queries.
// Synchronized (the old single-mutex wrapper) is deprecated; it now
// delegates to Concurrent, and the fully serialized behavior remains
// available as Serialized for benchmarking (crackbench -clients N
// measures both).
//
// Serving statistics (ServeStats) use conservative nearest-rank
// percentiles — the fractional rank is rounded upward, never truncated to
// a rank below the percentile — measure elapsed time from the earliest
// submission, and count failed queries in Errors rather than silently
// shrinking the run.
//
// # Sharding
//
// One Concurrent engine still funnels every crack through a single write
// lock. Sharded splits the relation across n inner engines, each behind
// its own Concurrent wrapper:
//
//	e := crackstore.Sharded(crackstore.Sideways, rel, 4, crackstore.ShardOptions{Attr: "A"})
//	srv := crackstore.Serve(e, crackstore.ServeOptions{Workers: 16})
//
// Rows are range-partitioned on the chosen attribute (boundaries at the
// base data's n-quantiles), so conjunctive queries constraining that
// attribute are pruned to the shards whose value bands can intersect the
// predicate — a crack on one shard never blocks read-only hits on the
// others, and pruned shards are not touched at all. When the attribute
// cannot form n distinct bands (few distinct values, empty relation) or
// ShardOptions.Hash is set, partitioning falls back to hashing, which
// still spreads load and prunes point predicates but cannot prune ranges.
// Inserts and deletes route to the owning shard; global tuple keys are
// preserved. The sharded engine is already shared-safe — Serve and
// Concurrent use it as-is (crackbench -shards S -clients N measures it).
//
// The cmd/crackbench and cmd/tpchbench tools regenerate every table and
// figure of the paper's evaluation; see DESIGN.md for the experiment index
// and EXPERIMENTS.md for measured results.
package crackstore
