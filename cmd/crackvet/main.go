// Command crackvet runs the repo-invariant static analyzer suite over the
// crackstore module. It type-checks every package reachable from the given
// patterns (default ./...) and applies the six checkers in internal/vet:
// epochpin, frozenversion, lockpair, wirebounds, exhaustive, detrand. Each
// finding prints as `file:line: [check-name] message`; the process exits 1
// when any unsuppressed finding remains, 2 on a loading/usage error, and 0
// on a clean tree. Pragma-suppressed findings (//crackvet:ignore) are
// counted and summarized so exceptions stay visible in CI logs.
//
// Usage:
//
//	crackvet [-json] [-check name,name] [packages]
//
// With -json, findings are emitted as a single JSON document (an object
// with "findings" and "suppressed" arrays; each entry has file, line,
// check, message) instead of the line-oriented text form.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"crackstore/internal/vet"
)

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

type jsonOutput struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed []jsonFinding `json:"suppressed"`
}

func toJSON(fs []vet.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line,
			Check: f.Check, Message: f.Message,
		})
	}
	return out
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	checkList := flag.String("check", "", "comma-separated checker names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: crackvet [-json] [-check name,name] [packages]\n\nCheckers:\n")
		for _, c := range vet.All {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", c.Name, c.Doc)
		}
	}
	flag.Parse()

	checkers := vet.All
	if *checkList != "" {
		byName := make(map[string]*vet.Checker)
		for _, c := range vet.All {
			byName[c.Name] = c
		}
		checkers = nil
		for _, name := range strings.Split(*checkList, ",") {
			name = strings.TrimSpace(name)
			c, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "crackvet: unknown checker %q\n", name)
				os.Exit(2)
			}
			checkers = append(checkers, c)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := vet.Load(cwd, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackvet: %v\n", err)
		os.Exit(2)
	}

	res := vet.Run(pkgs, checkers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOutput{
			Findings:   toJSON(res.Findings),
			Suppressed: toJSON(res.Suppressed),
		}); err != nil {
			fmt.Fprintf(os.Stderr, "crackvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		if n := len(res.Suppressed); n > 0 {
			fmt.Fprintf(os.Stderr, "crackvet: %d finding(s) suppressed by //crackvet:ignore pragmas:\n", n)
			for _, f := range res.Suppressed {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
		}
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}
