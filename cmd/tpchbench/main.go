// Command tpchbench regenerates the TPC-H experiments of the paper's
// Section 5: Figure 14 (per-query sequences of 30 parameter variations on
// five engines), the improvement summary table, and the mixed-workload
// closing figure.
//
// Usage:
//
//	tpchbench -all                  # Figure 14 + summary table
//	tpchbench -mixed                # mixed workload figure
//	tpchbench -sf 0.05 -runs 30     # bigger scale factor
//
// The paper runs scale factor 1 (6M lineitems); the default here is
// SF 0.01 (60K lineitems) so a full run finishes in seconds. Shapes — who
// wins and by what factor — are preserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crackstore/internal/exp"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.01, "TPC-H scale factor (paper: 1)")
		runs    = flag.Int("runs", 30, "parameter variations per query (paper: 30)")
		all     = flag.Bool("all", false, "run Figure 14 for all twelve queries")
		mixed   = flag.Bool("mixed", false, "run the mixed-workload experiment")
		batches = flag.Int("batches", 5, "mixed workload batches (paper: 5)")
		seed    = flag.Int64("seed", 1, "generator seed")
		csvDir  = flag.String("csv", "", "also write full series as CSV files into this directory")
	)
	flag.Parse()
	if !*all && !*mixed {
		*all = true
	}

	cfg := exp.Config{Seed: *seed, W: os.Stdout, CSVDir: *csvDir}
	if *all {
		t0 := time.Now()
		exp.Fig14(cfg, *sf, *runs)
		fmt.Printf("\n[fig14 completed in %v]\n", time.Since(t0).Round(time.Millisecond))
	}
	if *mixed {
		t0 := time.Now()
		exp.Mixed(cfg, *sf, *batches)
		fmt.Printf("\n[mixed completed in %v]\n", time.Since(t0).Round(time.Millisecond))
	}
}
