package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"
)

// metricSample is one family as rendered by the registry's JSON
// exposition (obs.Registry.WriteJSON): scalars carry Value, histograms
// carry Count/Sum/P50/P99/Max in seconds.
type metricSample struct {
	Type  string  `json:"type"`
	Value float64 `json:"value"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// scrapeJSON pulls one snapshot of every family from a crackserved
// metrics endpoint.
func scrapeJSON(url string) (map[string]metricSample, error) {
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var out map[string]metricSample
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return out, nil
}

// watchMetrics is the -metrics mode: poll a crackserved -metrics-addr
// endpoint and print a live delta view once per interval — counters as
// per-second rates over the window, gauges as current values, histograms
// as count deltas with current p50/p99/max. Counters that did not move
// and zero gauges are suppressed so a busy server produces a compact
// report of what is actually happening. Runs until rounds are exhausted
// (rounds <= 0 means forever) or the endpoint disappears.
func watchMetrics(addr string, interval time.Duration, rounds int) {
	url := "http://" + addr + "/metrics?format=json"
	prev, err := scrapeJSON(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cracktrace: %v (is crackserved running with -metrics-addr %s?)\n", err, addr)
		os.Exit(1)
	}
	fmt.Printf("watching %s: %d families, one delta report every %v\n", url, len(prev), interval)
	for i := 0; rounds <= 0 || i < rounds; i++ {
		time.Sleep(interval)
		cur, err := scrapeJSON(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cracktrace: %v\n", err)
			os.Exit(1)
		}
		printDelta(prev, cur, interval)
		prev = cur
	}
}

func printDelta(prev, cur map[string]metricSample, window time.Duration) {
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("-- %s --\n", time.Now().Format("15:04:05"))
	quiet := 0
	for _, name := range names {
		c := cur[name]
		switch c.Type {
		case "counter":
			d := c.Value - prev[name].Value
			if d == 0 {
				quiet++
				continue
			}
			fmt.Printf("  %-44s %12.0f  (+%.0f, %.1f/s)\n", name, c.Value, d, d/window.Seconds())
		case "gauge":
			if c.Value == 0 && prev[name].Value == 0 {
				quiet++
				continue
			}
			fmt.Printf("  %-44s %12g\n", name, c.Value)
		case "histogram":
			d := c.Count - prev[name].Count
			if d == 0 && c.Count == 0 {
				quiet++
				continue
			}
			fmt.Printf("  %-44s %12d  (+%d)  p50=%s p99=%s max=%s\n",
				name, c.Count, d, secs(c.P50), secs(c.P99), secs(c.Max))
		}
	}
	if quiet > 0 {
		fmt.Printf("  (%d idle families suppressed)\n", quiet)
	}
}

func secs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
