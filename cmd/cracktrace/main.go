// Command cracktrace visualizes how sideways cracking self-organizes: it
// replays a random range workload over a small relation and, after selected
// queries, dumps the cracker map's piece structure (boundaries, piece
// sizes) and the map set's tape — the "knowledge" the system has learned
// so far.
//
// With -metrics addr it instead becomes a live monitor for a running
// crackserved: it polls the daemon's /metrics?format=json exposition and
// prints a delta report per interval — counters as per-second rates over
// the window, gauges as current values, histograms as count deltas with
// current p50/p99/max — suppressing families that did not move.
//
// Usage:
//
//	cracktrace -rows 1000 -queries 20 -sel 0.1
//	cracktrace -metrics localhost:9191 -interval 2s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	crackstore "crackstore"
	"crackstore/internal/crackindex"
	"crackstore/internal/workload"
)

func main() {
	var (
		rows     = flag.Int("rows", 1000, "relation rows")
		queries  = flag.Int("queries", 20, "queries to replay")
		sel      = flag.Float64("sel", 0.1, "selectivity per query")
		seed     = flag.Int64("seed", 1, "seed")
		metrics  = flag.String("metrics", "", "watch a crackserved -metrics-addr endpoint at this host:port instead of running the local replay")
		interval = flag.Duration("interval", 2*time.Second, "metrics mode: polling interval")
		roundsN  = flag.Int("rounds", 0, "metrics mode: stop after this many delta reports (0 = run until interrupted)")
	)
	flag.Parse()

	if *metrics != "" {
		watchMetrics(*metrics, *interval, *roundsN)
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	rel := crackstore.Build("R", *rows, []string{"A", "B"},
		func(string, int) crackstore.Value { return 1 + rng.Int63n(int64(*rows)) })
	e := crackstore.Open(crackstore.Sideways, rel)
	st := crackstore.SidewaysStore(e)
	if st == nil {
		fmt.Fprintln(os.Stderr, "internal error: not a sideways engine")
		os.Exit(1)
	}
	gen := workload.New(int64(*rows), *seed+1)

	for q := 1; q <= *queries; q++ {
		pred := gen.Range(*sel)
		res, cost := e.Query(crackstore.Query{
			Preds: []crackstore.AttrPred{{Attr: "A", Pred: pred}},
			Projs: []string{"B"},
		})
		fmt.Printf("\nquery %d: %v -> %d tuples in %v\n", q, pred, res.N, cost.Total())
		set := st.SetIfExists("A")
		if set == nil {
			continue
		}
		m := set.MapIfExists("B")
		if m == nil {
			continue
		}
		idx := m.Pairs().Idx
		fmt.Printf("  map M_AB: %d tuples, %d pieces, tape cursor %d/%d\n",
			m.Len(), idx.Pieces(), m.Cursor(), set.TapeLen())
		if q == 1 || q == *queries || q%5 == 0 {
			fmt.Println("  piece structure:")
			prev := 0
			idx.Walk(func(b crackindex.Bound, pos int) {
				fmt.Printf("    [%6d, %6d)  %7d tuples  | next values %s\n",
					prev, pos, pos-prev, b)
				prev = pos
			})
			fmt.Printf("    [%6d, %6d)  %7d tuples\n", prev, m.Len(), m.Len()-prev)
		}
	}
	fmt.Printf("\nstorage used by maps: %d tuples\n", e.Storage())
}
