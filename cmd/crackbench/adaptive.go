package main

import (
	"fmt"
	"os"

	"crackstore/internal/crack"
	"crackstore/internal/exp"
	"crackstore/internal/workload"
)

// runAdaptiveBench is the -policy / -pattern entry point: the adaptive
// cracking policy comparison across access patterns. It emits
// bench/BENCH_adaptive_workloads.json (override with -json) with
// policy/pattern metadata on every series.
func runAdaptiveBench(rows, queries int, seed int64, jsonDir, policy, pattern string) {
	cfg := exp.Default()
	cfg.Rows, cfg.Queries = 100_000, 1000
	cfg.Seed = seed
	cfg.W = os.Stdout
	if rows > 0 {
		cfg.Rows = rows
	}
	if queries > 0 {
		cfg.Queries = queries
	}
	if jsonDir == "" {
		// The comparison artifact is what this mode exists to produce.
		jsonDir = "bench"
	}
	cfg.JSONDir = jsonDir

	var policies, patterns []string
	if policy != "" && policy != "all" {
		if _, ok := crack.KindByName(policy); !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q (default|stochastic|capped|all)\n", policy)
			os.Exit(2)
		}
		policies = []string{policy}
	}
	if pattern != "" && pattern != "all" {
		if _, ok := workload.Pattern(pattern, 0.01); !ok {
			fmt.Fprintf(os.Stderr, "unknown pattern %q (random|sequential|zoomin|periodic|all)\n", pattern)
			os.Exit(2)
		}
		patterns = []string{pattern}
	}
	fmt.Printf("== adaptive cracking policies: %d rows, %d queries per (pattern, policy) pair ==\n",
		cfg.Rows, cfg.Queries)
	exp.AdaptiveWorkloads(cfg, patterns, policies)
}
