package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/exp"
	"crackstore/internal/serve"
	"crackstore/internal/store"
	"crackstore/internal/workload"
)

// mvccConfig drives the -mvcc mode: the snapshot-reads benchmark. A warm
// read-only workload runs against a selection-cracking engine while one
// background writer cracks a cold attribute continuously; the same
// read+write schedule is measured under the Snapshot wrapper (lock-free
// epoch-protected reads) and under the Concurrent RWMutex wrapper, plus a
// no-writer Snapshot baseline — at each GOMAXPROCS value of the -cpus sweep.
// The claim under test: snapshot read throughput stays near the no-writer
// baseline and read p99 escapes the crack-duration cliff that the RWMutex
// imposes, because readers never wait for a crack.
type mvccConfig struct {
	Clients int
	Rows    int
	Queries int
	Pool    int
	Sel     float64
	Seed    int64
	JSONDir string
	CPUs    []int
}

func (c mvccConfig) withDefaults() mvccConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Rows <= 0 {
		c.Rows = 300_000
	}
	if c.Queries <= 0 {
		c.Queries = 1_000_000
	}
	if c.Pool <= 0 {
		c.Pool = 64
	}
	if c.Sel <= 0 {
		// Narrow point-lookup-style reads: they keep the readers'
		// allocation rate (and so the GC-assist noise floor both arms
		// share) low, which is what lets the RWMutex arm's crack stalls
		// stand out of the percentile instead of drowning in GC jitter.
		c.Sel = 0.0002
	}
	if len(c.CPUs) == 0 {
		c.CPUs = []int{1, 2, 4}
	}
	if c.JSONDir == "" {
		// The committed artifact this mode exists to produce.
		c.JSONDir = "bench"
	}
	return c
}

// mvccArm measures one (wrapper, writer on/off) configuration at the
// current GOMAXPROCS: fresh relation, warm the read pool, then Clients
// reader goroutines against the serving layer while the background writer
// (when enabled) cracks attribute C continuously.
func (c mvccConfig) mvccArm(name string, snapshot, writer bool) serve.Stats {
	rng := rand.New(rand.NewSource(c.Seed))
	domain := int64(c.Rows)
	rel := store.Build("R", c.Rows, []string{"A", "B", "C"}, func(string, int) store.Value {
		return rng.Int63n(domain) + 1
	})
	e := engine.New(engine.SelCrack, rel)

	gen := workload.New(domain, c.Seed+1)
	pool := make([]engine.Query, c.Pool)
	for i := range pool {
		pool[i] = engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: gen.Range(c.Sel)}},
			Projs: []string{"B"},
		}
	}
	// Wide ranges over C: a random lo almost always lands two fresh
	// bounds, so every writer query cracks — and the RWMutex arm runs the
	// crack AND the 2%-of-domain gather + reconstruction under the write
	// lock, a stall that never fades even once the column is finely
	// cracked. The snapshot arm publishes a fresh version per query
	// instead, exercising the whole crack/publish/reclaim cycle while
	// readers stay lock-free.
	width := domain/50 + 1
	coldC := func(rng *rand.Rand) engine.Query {
		lo := 1 + rng.Int63n(domain-width)
		return engine.Query{
			Preds: []engine.AttrPred{{Attr: "C", Pred: store.Range(lo, lo+width)}},
			Projs: []string{"B"},
		}
	}
	// Pre-split C's largest pieces so the measured window exercises the
	// steady state — a continuous stream of fresh-bounds cracks — rather
	// than the one-off cost of partitioning a virgin 8*Rows-byte column.
	warmRng := rand.New(rand.NewSource(c.Seed + 3))
	for i := 0; i < 8; i++ {
		e.Query(coldC(warmRng))
	}
	for _, q := range pool {
		e.Query(q)
	}
	runtime.GC()

	srv := serve.New(e, serve.Options{Workers: c.Clients, Snapshot: snapshot})
	shared := srv.Engine()

	var stop atomic.Bool
	var writerWG sync.WaitGroup
	if writer {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			wrng := rand.New(rand.NewSource(c.Seed + 7))
			for !stop.Load() {
				// Each wakeup: one fresh-bounds crack on C plus a burst of
				// insertions. The insertions are the asymmetric load the
				// snapshot layer exists for — under the RWMutex wrapper a
				// pending insertion poisons the read-only fast path of
				// every reader whose range matches it, forcing those READS
				// to ripple-merge under the write lock; under the snapshot
				// wrapper readers apply pendings virtually on the lock-free
				// path and the writer itself merges the backlog when it
				// exceeds the bound. Bursting matters on a loaded box: a
				// sleeping writer waits ~a scheduler quantum for a P after
				// each sleep, so one operation per wakeup would throttle
				// the write stream no matter the sleep interval.
				shared.Query(coldC(wrng))
				for i := 0; i < 32 && !stop.Load(); i++ {
					shared.Insert(wrng.Int63n(domain)+1, wrng.Int63n(domain)+1, wrng.Int63n(domain)+1)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	perClient := c.Queries / c.Clients
	var wg sync.WaitGroup
	for g := 0; g < c.Clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				if _, _, err := srv.Do(pool[rng.Intn(len(pool))]); err != nil {
					panic(err)
				}
			}
		}(c.Seed + 100 + int64(g))
	}
	wg.Wait()
	stop.Store(true)
	writerWG.Wait()
	st := srv.Stats()
	srv.Close()
	fmt.Printf("%-28s %8d reads  %10.0f q/s  p50=%-8s p99=%-8s max=%-9s wait=%s/%d snaps=%d\n",
		name, st.Queries, st.QPS, st.P50, st.P99, st.Max, st.ReaderWait.Round(time.Microsecond), st.ReaderWaits, st.Snapshots)
	return st
}

// runMvccBench is the -mvcc entry point.
func runMvccBench(c mvccConfig) {
	c = c.withDefaults()
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	fmt.Printf("== snapshot reads under a cracking writer: %d readers, %d rows, %d reads/arm, GOMAXPROCS sweep %v ==\n",
		c.Clients, c.Rows, c.Queries, c.CPUs)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var series []exp.Series
	var headline string
	for _, p := range c.CPUs {
		runtime.GOMAXPROCS(p)
		fmt.Printf("\n-- GOMAXPROCS=%d --\n", p)
		baseline := c.mvccArm(fmt.Sprintf("snapshot no-writer/p=%d", p), true, false)
		snap := c.mvccArm(fmt.Sprintf("snapshot+writer/p=%d", p), true, true)
		conc := c.mvccArm(fmt.Sprintf("concurrent+writer/p=%d", p), false, true)

		if baseline.QPS > 0 && snap.P99 > 0 {
			ratio := float64(conc.P99) / float64(snap.P99)
			kept := snap.QPS / baseline.QPS * 100
			fmt.Printf("p=%d: snapshot keeps %.0f%% of no-writer read throughput; read p99 %.1fx better than RWMutex (%v vs %v)\n",
				p, kept, ratio, snap.P99, conc.P99)
			if p > 1 {
				headline = fmt.Sprintf("at GOMAXPROCS=%d snapshot keeps %.0f%% of no-writer throughput, p99 %.1fx better than Concurrent (%v vs %v)",
					p, kept, ratio, snap.P99, conc.P99)
			}
		}
		add := func(name string, st serve.Stats) {
			series = append(series, exp.Series{
				Name: name, Y: downsample(st.Latencies, mvccMaxSamples), Errors: st.Errors, CPUs: p,
				ReaderWait: st.ReaderWait, ReaderWaits: st.ReaderWaits,
				Snapshots: st.Snapshots, Reclaimed: st.Reclaimed,
			})
		}
		add(fmt.Sprintf("snapshot no-writer/p=%d", p), baseline)
		add(fmt.Sprintf("snapshot+writer/p=%d", p), snap)
		add(fmt.Sprintf("concurrent+writer/p=%d", p), conc)
	}

	if c.JSONDir != "" {
		title := fmt.Sprintf("Snapshot reads under a continuously cracking writer (%d rows, %d readers): %s",
			c.Rows, c.Clients, headline)
		if err := exp.WriteSeriesJSONMeta(c.JSONDir, "mvcc_reads", title, "read (completion order, strided sample)",
			map[string]string{
				"rows":    fmt.Sprint(c.Rows),
				"readers": fmt.Sprint(c.Clients),
				"reads":   fmt.Sprint(c.Queries),
				"seed":    fmt.Sprint(c.Seed),
				"stride":  fmt.Sprint((c.Queries + mvccMaxSamples - 1) / mvccMaxSamples),
			}, series); err != nil {
			fmt.Printf("json export failed: %v\n", err)
		}
	}
}

// mvccMaxSamples caps each emitted latency series: a million-read run would
// otherwise produce a >100MB artifact. Strided sampling keeps the
// percentile shape; the printed stats (and the title's headline numbers)
// are still computed over every read.
const mvccMaxSamples = 25_000

// downsample returns every kth element so the result stays under max.
func downsample(y []time.Duration, max int) []time.Duration {
	if len(y) <= max {
		return y
	}
	k := (len(y) + max - 1) / max
	out := make([]time.Duration, 0, (len(y)+k-1)/k)
	for i := 0; i < len(y); i += k {
		out = append(out, y[i])
	}
	return out
}
