package main

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/exp"
	"crackstore/internal/obs"
	"crackstore/internal/serve"
)

// obsConfig drives the -obs mode: the observability overhead benchmark.
// It runs the warm concurrent serving workload three times over identical
// relations — uninstrumented, instrumented (metrics registry attached and
// scraped continuously throughout the run), and instrumented with 1/1024
// trace-sampled span capture — and reports the throughput cost of each.
// The instrumentation contract is that the cost is in the noise
// (instrumented QPS >= ~97% of uninstrumented); the emitted
// BENCH_observability.json is the committed evidence.
type obsConfig struct {
	Clients int
	Rows    int
	Queries int
	Pool    int
	Sel     float64
	Seed    int64
	JSONDir string
}

func (c obsConfig) withDefaults() obsConfig {
	base := concurrentConfig{Rows: c.Rows, Queries: c.Queries, Pool: c.Pool, Sel: c.Sel}.withDefaults()
	c.Rows, c.Queries, c.Pool, c.Sel = base.Rows, base.Queries, base.Pool, base.Sel
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.JSONDir == "" {
		c.JSONDir = "bench"
	}
	return c
}

// traceSampleN is the sampling rate of the traced variant: the contract
// is that 1-in-1024 tracing has no measurable QPS cost.
const traceSampleN = 1024

// benchMaxPoints caps the per-series samples committed in the JSON
// artifact (strided via mvcc.go's downsample); the headline numbers (QPS
// ratios, percentiles) are computed over the full run before
// downsampling.
const benchMaxPoints = 20_000

// runObsMode measures one variant of the warm serving workload. With a
// registry, the engine bridge and serving layer register into it and a
// scraper goroutine renders the full Prometheus exposition continuously
// for the whole run — the measured overhead includes being scraped, not
// just counting. With traceEvery > 0, 1-in-traceEvery queries go through
// the span-capturing entry point.
func (c obsConfig) runObsMode(name string, reg *obs.Registry, traceEvery int) (serve.Stats, int) {
	base := concurrentConfig{
		Clients: c.Clients, Rows: c.Rows, Queries: c.Queries,
		Pool: c.Pool, Sel: c.Sel, Seed: c.Seed,
	}
	e := engine.Concurrent(engine.New(engine.Sideways, base.buildRelation()))
	pool := base.queryPool()
	for _, q := range pool {
		e.Query(q)
	}
	runtime.GC()

	srv := serve.New(e, serve.Options{Workers: c.Clients, Metrics: reg})
	engine.RegisterMetrics(reg, srv.Engine())
	scrapes := 0
	stop := make(chan struct{})
	var scraperDone sync.WaitGroup
	if reg != nil {
		scraperDone.Add(1)
		go func() {
			defer scraperDone.Done()
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					reg.WritePrometheus(io.Discard)
					scrapes++
				case <-stop:
					return
				}
			}
		}()
	}
	sampler := obs.NewSampler(traceEvery) // nil when traceEvery <= 0

	perClient := c.Queries / c.Clients
	var wg sync.WaitGroup
	for g := 0; g < c.Clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				q := pool[rng.Intn(len(pool))]
				if _, ok := sampler.Next(); ok {
					sp := new(serve.SpanTimes)
					if _, _, err := srv.DoUntilSpans(q, time.Time{}, sp); err != nil {
						panic(err)
					}
					continue
				}
				if _, _, err := srv.Do(q); err != nil {
					panic(err)
				}
			}
		}(c.Seed + 100 + int64(g))
	}
	wg.Wait()
	close(stop)
	scraperDone.Wait()
	st := srv.Stats()
	srv.Close()
	fmt.Printf("%-22s %8d queries  %3d errors  %10.0f q/s  p50=%-8s p99=%-8s max=%s",
		name, st.Queries, st.Errors, st.QPS, st.P50, st.P99, st.Max)
	if scrapes > 0 {
		fmt.Printf("  scrapes=%d", scrapes)
	}
	fmt.Println()
	return st, scrapes
}

// obsReps is how many times each mode runs; the best run per mode is
// reported. The instrumentation cost being measured is a few percent,
// well under scheduler noise on a shared machine, so the reps are
// interleaved round-robin (bare, instrumented, traced, bare, ...) — a
// multi-second interference window from a noisy neighbor then degrades
// all three arms equally instead of sinking whichever arm it landed on —
// and best-of-N per arm strips what remains.
const obsReps = 3

// runObsBench is the -obs entry point.
func runObsBench(c obsConfig) {
	c = c.withDefaults()
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	fmt.Printf("== observability overhead: %d clients, %d rows, %d queries, warm sideways workload, best of %d interleaved ==\n",
		c.Clients, c.Rows, c.Queries, obsReps)

	var bare, inst, traced serve.Stats
	var reg *obs.Registry
	var scrapes int
	tracedName := fmt.Sprintf("instrumented+1/%d", traceSampleN)
	for rep := 1; rep <= obsReps; rep++ {
		st, _ := c.runObsMode(fmt.Sprintf("uninstrumented [%d/%d]", rep, obsReps), nil, 0)
		if st.QPS > bare.QPS {
			bare = st
		}
		r := obs.NewRegistry()
		st, sc := c.runObsMode(fmt.Sprintf("instrumented [%d/%d]", rep, obsReps), r, 0)
		if st.QPS > inst.QPS {
			inst, reg, scrapes = st, r, sc
		}
		st, _ = c.runObsMode(fmt.Sprintf("%s [%d/%d]", tracedName, rep, obsReps), obs.NewRegistry(), traceSampleN)
		if st.QPS > traced.QPS {
			traced = st
		}
	}
	// Cross-check the log2-bucket histogram against the exact nearest-rank
	// percentiles the serving layer computes from raw samples: the bucket
	// upper bound is at most 2x the true value by construction.
	if h := reg.FindHistogram("crack_serve_latency_seconds"); h != nil && inst.P99 > 0 {
		s := h.Snapshot()
		fmt.Printf("histogram cross-check: p50=%v p99=%v max=%v vs exact p50=%v p99=%v max=%v (p99 ratio %.2fx)\n",
			s.P50, s.P99, s.Max, inst.P50, inst.P99, inst.Max, float64(s.P99)/float64(inst.P99))
	}

	if bare.QPS > 0 {
		fmt.Printf("instrumented/uninstrumented QPS ratio: %.3f (scraped %d times during the run)\n",
			inst.QPS/bare.QPS, scrapes)
		fmt.Printf("traced/uninstrumented QPS ratio:       %.3f\n", traced.QPS/bare.QPS)
	}
	if c.JSONDir != "" {
		title := fmt.Sprintf("Observability overhead, %d clients (%d rows, warm sideways workload): uninstrumented %.0f q/s vs instrumented %.0f q/s vs 1/%d traced %.0f q/s",
			c.Clients, c.Rows, bare.QPS, inst.QPS, traceSampleN, traced.QPS)
		series := []exp.Series{
			{Name: "uninstrumented", Y: downsample(bare.Latencies, benchMaxPoints), Errors: bare.Errors},
			{Name: "instrumented", Y: downsample(inst.Latencies, benchMaxPoints), Errors: inst.Errors},
			{Name: fmt.Sprintf("instrumented+1/%d traced", traceSampleN), Y: downsample(traced.Latencies, benchMaxPoints), Errors: traced.Errors},
		}
		meta := map[string]string{
			"rows":               fmt.Sprint(c.Rows),
			"queries":            fmt.Sprint(c.Queries),
			"clients":            fmt.Sprint(c.Clients),
			"selectivity":        fmt.Sprint(c.Sel),
			"seed":               fmt.Sprint(c.Seed),
			"trace_sample":       fmt.Sprint(traceSampleN),
			"best_of":            fmt.Sprint(obsReps),
			"scrapes":            fmt.Sprint(scrapes),
			"instrumented_ratio": fmt.Sprintf("%.4f", inst.QPS/bare.QPS),
			"traced_ratio":       fmt.Sprintf("%.4f", traced.QPS/bare.QPS),
			"uninstrumented_qps": fmt.Sprintf("%.0f", bare.QPS),
			"instrumented_qps":   fmt.Sprintf("%.0f", inst.QPS),
			"traced_qps":         fmt.Sprintf("%.0f", traced.QPS),
			"metric_families":    fmt.Sprint(len(reg.Families())),
		}
		if err := exp.WriteSeriesJSONMeta(c.JSONDir, "observability",
			title, "query (completion order)", meta, series); err != nil {
			fmt.Printf("json export failed: %v\n", err)
		}
	}
}
