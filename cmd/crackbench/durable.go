package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"crackstore/client"
	"crackstore/internal/engine"
	"crackstore/internal/exp"
	"crackstore/internal/store"
	"crackstore/internal/wal"
	"crackstore/internal/workload"
)

// durableConfig drives the -durable mode: the warm-restart benchmark of
// the durability subsystem. It cracks a durable store with a query pool,
// closes it cleanly, reopens it, and fires the same pool again — against a
// cold from-scratch engine answering the identical queries — so the
// artifact pins the claim that recovery replays the crack tape and the
// reopened store answers its first queries at warm speed instead of
// re-paying every crack. A second panel measures per-insert ack latency
// under each -fsync mode (none / group with concurrent writers / always),
// pinning the group-commit win: fsyncs shared across writers instead of
// one syscall per ack.
type durableConfig struct {
	Rows    int
	Queries int // pool size; the measured battery replays the pool once
	Sel     float64
	Seed    int64
	JSONDir string
	Inserts int // per fsync-mode series
	Writers int // concurrent writers in the group-commit series
}

func (c durableConfig) withDefaults() durableConfig {
	if c.Rows <= 0 {
		c.Rows = 200_000
	}
	if c.Queries <= 0 {
		c.Queries = 256
	}
	if c.Sel <= 0 {
		c.Sel = 0.0002
	}
	if c.Inserts <= 0 {
		c.Inserts = 1500
	}
	if c.Writers <= 0 {
		c.Writers = 8
	}
	if c.JSONDir == "" {
		// The durability series is this mode's artifact; emit it next to
		// the committed baselines unless told otherwise.
		c.JSONDir = "bench"
	}
	return c
}

func (c durableConfig) buildRelation() *store.Relation {
	rng := rand.New(rand.NewSource(c.Seed))
	domain := int64(c.Rows)
	return store.Build("R", c.Rows, []string{"A", "B", "C"}, func(string, int) store.Value {
		return rng.Int63n(domain) + 1
	})
}

func (c durableConfig) queryPool() []engine.Query {
	gen := workload.New(int64(c.Rows), c.Seed+1)
	pool := make([]engine.Query, c.Queries)
	for i := range pool {
		pool[i] = engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: gen.Range(c.Sel)}},
			Projs: []string{"B"},
		}
	}
	return pool
}

// battery fires the pool once in order, returning per-query latencies.
func battery(e engine.Engine, pool []engine.Query) []time.Duration {
	lats := make([]time.Duration, len(pool))
	for i, q := range pool {
		t0 := time.Now()
		e.Query(q)
		lats[i] = time.Since(t0)
	}
	return lats
}

// insertSeries opens a fresh durable store under mode and measures the
// ack latency of every insert across `writers` goroutines, returning the
// latencies plus the fsync count the run cost.
func (c durableConfig) insertSeries(mode wal.SyncMode, writers int) ([]time.Duration, int64) {
	dir, err := os.MkdirTemp("", "crackbench-durable-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	e, err := engine.OpenDurable(engine.SelCrack, c.buildRelation(), dir,
		engine.DurableOptions{Sync: mode})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: open durable: %v\n", err)
		os.Exit(1)
	}
	per := c.Inserts / writers
	latCh := make(chan []time.Duration, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				v := store.Value(1 + (w*per+i)%c.Rows)
				t0 := time.Now()
				if key := e.Insert(v, v, v); key < 0 {
					fmt.Fprintf(os.Stderr, "crackbench: durable insert refused (fsync=%s)\n", mode)
					os.Exit(1)
				}
				lats = append(lats, time.Since(t0))
			}
			latCh <- lats
		}(w)
	}
	wg.Wait()
	close(latCh)
	var all []time.Duration
	for lats := range latCh {
		all = append(all, lats...)
	}
	ds, _ := engine.DurStatsOf(e)
	engine.CloseDurable(e)
	return all, ds.Wal.Fsyncs
}

// runDurableBench is the -durable entry point.
func runDurableBench(c durableConfig) {
	c = c.withDefaults()
	pool := c.queryPool()
	fmt.Printf("== durability: warm restart vs cold rebuild (%d rows, %d-query pool) + fsync-mode ack latency (%d inserts) ==\n",
		c.Rows, c.Queries, c.Inserts)

	// Crack a durable store with the whole pool, then close it cleanly.
	dir, err := os.MkdirTemp("", "crackbench-durable-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	e, err := engine.OpenDurable(engine.SelCrack, c.buildRelation(), dir,
		engine.DurableOptions{Sync: wal.SyncGroup})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: open durable: %v\n", err)
		os.Exit(1)
	}
	for _, q := range pool {
		e.Query(q)
	}
	if _, err := engine.CloseDurable(e); err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: close durable: %v\n", err)
		os.Exit(1)
	}

	// Warm restart: recovery replays the crack tape, so the pool's ranges
	// are already cracked when the first query arrives.
	runtime.GC()
	t0 := time.Now()
	e, err = engine.OpenDurable(engine.SelCrack, nil, dir, engine.DurableOptions{Sync: wal.SyncGroup})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: reopen durable: %v\n", err)
		os.Exit(1)
	}
	openTime := time.Since(t0)
	ds, _ := engine.DurStatsOf(e)
	warm := battery(e, pool)
	engine.CloseDurable(e)

	// Cold rebuild: a fresh engine over the same relation pays every crack
	// in the measured battery.
	runtime.GC()
	cold := battery(engine.New(engine.SelCrack, c.buildRelation()), pool)

	fmt.Printf("%-28s open=%-10v battery=%-10v (tape=%d cracks, clean=%v)\n",
		"warm restart", openTime.Round(time.Millisecond), sum(warm).Round(time.Microsecond), ds.TapeLen, ds.CleanShutdown)
	fmt.Printf("%-28s open=%-10s battery=%-10v\n", "cold rebuild", "-", sum(cold).Round(time.Microsecond))
	if w, cd := sum(warm), sum(cold); w > 0 {
		fmt.Printf("cold/warm first-query-battery ratio: %.1fx\n", float64(cd)/float64(w))
	}

	// Ack latency per fsync mode. SyncNone never waits, SyncAlways pays a
	// sync per ack, SyncGroup shares syncs across concurrent writers.
	none, noneFs := c.insertSeries(wal.SyncNone, 1)
	always, alwaysFs := c.insertSeries(wal.SyncAlways, 1)
	group, groupFs := c.insertSeries(wal.SyncGroup, c.Writers)
	fmt.Printf("%-28s total=%-10v fsyncs=%d\n", "insert fsync=none", sum(none).Round(time.Microsecond), noneFs)
	fmt.Printf("%-28s total=%-10v fsyncs=%d\n", "insert fsync=always", sum(always).Round(time.Microsecond), alwaysFs)
	fmt.Printf("%-28s total=%-10v fsyncs=%d (%d writers, group commit)\n",
		"insert fsync=group", sum(group).Round(time.Microsecond), groupFs, c.Writers)

	title := fmt.Sprintf("Durable cracking (%d rows): warm restart answers the %d-query pool in %v vs %v cold; group commit spent %d fsyncs on %d acked inserts",
		c.Rows, c.Queries, sum(warm).Round(time.Microsecond), sum(cold).Round(time.Microsecond), groupFs, c.Inserts/c.Writers*c.Writers)
	series := []exp.Series{
		{Name: "cold rebuild (first queries)", Y: cold},
		{Name: "warm restart (first queries)", Y: warm},
		{Name: "insert fsync=none", Y: none},
		{Name: "insert fsync=always", Y: always},
		{Name: fmt.Sprintf("insert fsync=group (%d writers)", c.Writers), Y: group},
	}
	meta := map[string]string{
		"rows":          fmt.Sprint(c.Rows),
		"pool":          fmt.Sprint(c.Queries),
		"selectivity":   fmt.Sprint(c.Sel),
		"seed":          fmt.Sprint(c.Seed),
		"warm_open_us":  fmt.Sprint(openTime.Microseconds()),
		"tape_cracks":   fmt.Sprint(ds.TapeLen),
		"fsyncs_none":   fmt.Sprint(noneFs),
		"fsyncs_always": fmt.Sprint(alwaysFs),
		"fsyncs_group":  fmt.Sprint(groupFs),
		"group_writers": fmt.Sprint(c.Writers),
	}
	if err := exp.WriteSeriesJSONMeta(c.JSONDir, "durability",
		title, "query / insert (issue order)", meta, series); err != nil {
		fmt.Printf("json export failed: %v\n", err)
	}
}

// durableState is the acked-write manifest the -durable-smoke run leaves
// for -durable-verify: which sentinel inserts the daemon acknowledged
// before it was killed. Sentinel values live far outside the synthetic
// relation's [1, rows] domain, so point queries over them count only
// smoke-run inserts.
type durableState struct {
	Base      int64   `json:"base"`      // sentinel value of insert 0
	Submitted int     `json:"submitted"` // inserts sent (acked or not)
	Acked     []int64 `json:"acked"`     // sentinel values the daemon acked
}

const durableSentinelBase = int64(1) << 40

// runDurableSmoke churns a crackserved daemon with sentinel inserts and
// interleaved range queries until the daemon dies (the CI crash job
// SIGKILLs it mid-churn) or the insert budget runs out, then writes the
// acked manifest. Exits nonzero only when not a single insert was acked —
// that means the run never overlapped a live daemon and the crash test
// proved nothing.
func runDurableSmoke(addr, statePath string, rows int, seed int64) {
	if rows <= 0 {
		rows = 200_000
	}
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: dial %s: %v\n", addr, err)
		os.Exit(1)
	}
	defer cl.Close()

	gen := workload.New(int64(rows), seed+1)
	st := durableState{Base: durableSentinelBase}
	const maxInserts = 200_000
	for i := 0; i < maxInserts; i++ {
		s := durableSentinelBase + int64(i)
		st.Submitted++
		key, err := cl.Insert(store.Value(s), store.Value(s), store.Value(s))
		if err != nil {
			// Connection torn mid-call: the daemon is gone (or dying);
			// this insert may or may not have landed — it is NOT acked.
			break
		}
		if key < 0 {
			// In-band refusal: the daemon's WAL rejected the write before
			// it was applied. Not acked, daemon still alive.
			continue
		}
		st.Acked = append(st.Acked, s)
		if i%8 == 0 {
			// Interleaved queries crack server-side, so the kill also
			// lands mid-reorganization, not just mid-append.
			if _, _, err := cl.Query(engine.Query{
				Preds: []engine.AttrPred{{Attr: "A", Pred: gen.Range(0.001)}},
				Projs: []string{"B"},
			}); err != nil {
				break
			}
		}
	}
	data, err := json.Marshal(st)
	if err == nil {
		err = os.WriteFile(statePath, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: write %s: %v\n", statePath, err)
		os.Exit(1)
	}
	fmt.Printf("crackbench: durable smoke: %d submitted, %d acked before the daemon went away\n",
		st.Submitted, len(st.Acked))
	if len(st.Acked) == 0 {
		fmt.Fprintln(os.Stderr, "crackbench: durable smoke acked nothing; crash test is vacuous")
		os.Exit(1)
	}
}

// runDurableVerify checks a restarted daemon against the smoke manifest:
// every acked sentinel must be present exactly once (zero lost acked
// writes, no duplicated replay), and the sentinel band's total count must
// sit in [acked, submitted] — unacked in-flight inserts may legitimately
// have landed (the crash hit after append, before the response), but
// nothing outside the submitted set may exist. Exits nonzero on any
// violation.
func runDurableVerify(addr, statePath string) {
	data, err := os.ReadFile(statePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: %v\n", err)
		os.Exit(1)
	}
	var st durableState
	if err := json.Unmarshal(data, &st); err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: bad state file %s: %v\n", statePath, err)
		os.Exit(1)
	}
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: dial %s: %v\n", addr, err)
		os.Exit(1)
	}
	defer cl.Close()

	bad := 0
	for _, s := range st.Acked {
		res, _, err := cl.Query(engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: store.Point(store.Value(s))}},
			Projs: []string{"A"},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "crackbench: verify query for %d: %v\n", s, err)
			os.Exit(1)
		}
		if res.N != 1 {
			fmt.Fprintf(os.Stderr, "crackbench: acked insert %d present %d times, want exactly 1\n", s, res.N)
			bad++
		}
	}
	res, _, err := cl.Query(engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(store.Value(st.Base), store.Value(st.Base+int64(st.Submitted)))}},
		Projs: []string{"A"},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: verify band query: %v\n", err)
		os.Exit(1)
	}
	if res.N < len(st.Acked) || res.N > st.Submitted {
		fmt.Fprintf(os.Stderr, "crackbench: sentinel band holds %d rows, want between %d acked and %d submitted\n",
			res.N, len(st.Acked), st.Submitted)
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "crackbench: durable verify FAILED: %d violations\n", bad)
		os.Exit(1)
	}
	fmt.Printf("crackbench: durable verify ok: %d/%d acked inserts survived the crash exactly once (band=%d of %d submitted)\n",
		len(st.Acked), len(st.Acked), res.N, st.Submitted)
}
