package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"crackstore/internal/engine"
	"crackstore/internal/exp"
	"crackstore/internal/serve"
	"crackstore/internal/shard"
	"crackstore/internal/store"
	"crackstore/internal/workload"
)

// concurrentConfig drives the -clients mode: a multi-client serving
// benchmark over a warm sideways workload, comparing the serialized
// (global-mutex) baseline against the probe/execute Concurrent wrapper —
// and, with -shards N, against a relation range-partitioned across N
// independently locked engines.
type concurrentConfig struct {
	Clients int
	Shards  int // > 1 adds the sharded mode and the sharded JSON emission
	Rows    int
	Queries int
	Pool    int     // distinct predicates in the warm workload
	Sel     float64 // per-query selectivity
	Churn   float64 // fraction of queries over cold, never-warmed ranges
	Seed    int64
	JSONDir string
	Batch   bool // also run the admission-batching server variant
	// CPUSweep, when non-empty, repeats the serialized/concurrent
	// comparison at each GOMAXPROCS value, emitting one series per value
	// (exp.Series.CPUs) so multi-core scaling claims are reproducible from
	// the artifact. Sharding and batching variants stay out of the sweep.
	CPUSweep []int

	// jsonDefaulted is set when JSONDir was not given explicitly: only the
	// sharded artifact is emitted then, so a bare `-shards N -clients M`
	// cannot silently overwrite the committed single-engine baseline.
	jsonDefaulted bool
}

func (c concurrentConfig) withDefaults() concurrentConfig {
	if c.Rows <= 0 {
		c.Rows = 200_000
	}
	if c.Queries <= 0 {
		c.Queries = 40_000
	}
	if c.Pool <= 0 {
		c.Pool = 64
	}
	if c.Sel <= 0 {
		// Interactive serving is dominated by selective queries (point
		// lookups and narrow ranges); 0.02% of the relation per query
		// mirrors that shape. -sel overrides.
		c.Sel = 0.0002
	}
	if c.Shards > 1 && c.JSONDir == "" {
		// The sharded series is the artifact this mode exists to produce;
		// emit it next to the committed baselines unless told otherwise.
		c.JSONDir = "bench"
		c.jsonDefaulted = true
	}
	return c
}

func (c concurrentConfig) buildRelation() *store.Relation {
	rng := rand.New(rand.NewSource(c.Seed))
	domain := int64(c.Rows)
	return store.Build("R", c.Rows, []string{"A", "B", "C"}, func(attr string, row int) store.Value {
		return rng.Int63n(domain) + 1
	})
}

func (c concurrentConfig) queryPool() []engine.Query {
	gen := workload.New(int64(c.Rows), c.Seed+1)
	pool := make([]engine.Query, c.Pool)
	for i := range pool {
		pool[i] = engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: gen.Range(c.Sel)}},
			Projs: []string{"B"},
		}
	}
	return pool
}

// churnGeometry returns the cold-range width and the span of valid lower
// bounds, clamped so -sel close to (or above) 1 cannot drive the range
// generator out of the domain. The remote benchmark shares it: both arms
// of the comparison must draw identical cold queries.
func (c concurrentConfig) churnGeometry() (width, span int64) {
	width = int64(float64(c.Rows)*c.Sel) + 1
	if width > int64(c.Rows)-1 {
		width = int64(c.Rows) - 1
	}
	span = int64(c.Rows) - width
	if span < 1 {
		span = 1
	}
	return width, span
}

// coldQuery draws one query over a cold, almost certainly uncracked range:
// it reorganizes and needs exclusive access — one global write lock for a
// single engine, one shard's write lock for a sharded one.
func coldQuery(rng *rand.Rand, width, span int64) engine.Query {
	lo := 1 + rng.Int63n(span)
	return engine.Query{
		Preds: []engine.AttrPred{{Attr: "A", Pred: store.Range(lo, lo+width)}},
		Projs: []string{"B"},
	}
}

// runMode measures one engine configuration: build a fresh relation, wrap
// it through build, warm the engine by running the whole pool once (every
// range gets cracked and every map aligned), then fire Clients goroutines
// at a serving layer and collect throughput, latency, and error counts.
func (c concurrentConfig) runMode(name string, build func(*store.Relation) engine.Engine, batch bool) serve.Stats {
	e := build(c.buildRelation())
	pool := c.queryPool()
	for _, q := range pool {
		e.Query(q)
	}
	// Collect garbage from the build/warm phase so allocation debt does
	// not pollute the measured serving window.
	runtime.GC()

	srv := serve.New(e, serve.Options{Workers: c.Clients, Batch: batch})
	perClient := c.Queries / c.Clients
	width, span := c.churnGeometry()
	var wg sync.WaitGroup
	for g := 0; g < c.Clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				q := pool[rng.Intn(len(pool))]
				if c.Churn > 0 && rng.Float64() < c.Churn {
					q = coldQuery(rng, width, span)
				}
				if _, _, err := srv.Do(q); err != nil {
					panic(err)
				}
			}
		}(c.Seed + 100 + int64(g))
	}
	wg.Wait()
	st := srv.Stats()
	srv.Close()
	fmt.Printf("%-22s %8d queries  %3d errors  %10.0f q/s  p50=%-8s p95=%-8s p99=%-8s max=%s",
		name, st.Queries, st.Errors, st.QPS, st.P50, st.P95, st.P99, st.Max)
	if st.ReaderWaits > 0 {
		fmt.Printf("  wait=%s/%d", st.ReaderWait.Round(time.Microsecond), st.ReaderWaits)
	}
	if st.Snapshots > 0 {
		fmt.Printf("  snaps=%d", st.Snapshots)
	}
	fmt.Println()
	return st
}

// runCPUSweep repeats the serialized/concurrent comparison at each
// GOMAXPROCS value of the -cpus flag and emits one series per (mode, CPUs)
// pair, so the artifact carries the scaling curve rather than one point.
func (c concurrentConfig) runCPUSweep(single func(func(engine.Engine) engine.Engine) func(*store.Relation) engine.Engine) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var series []exp.Series
	for _, p := range c.CPUSweep {
		runtime.GOMAXPROCS(p)
		fmt.Printf("\n-- GOMAXPROCS=%d --\n", p)
		serialized := c.runMode(fmt.Sprintf("serialized/p=%d", p), single(engine.Serialized), false)
		concurrent := c.runMode(fmt.Sprintf("concurrent/p=%d", p), single(engine.Concurrent), false)
		if serialized.QPS > 0 {
			fmt.Printf("p=%d speedup: %.2fx aggregate QPS over the serialized baseline\n",
				p, concurrent.QPS/serialized.QPS)
		}
		series = append(series,
			exp.Series{Name: fmt.Sprintf("serialized/p=%d", p), Y: serialized.Latencies,
				Errors: serialized.Errors, CPUs: p},
			exp.Series{Name: fmt.Sprintf("concurrent/p=%d", p), Y: concurrent.Latencies,
				Errors: concurrent.Errors, CPUs: p,
				ReaderWait: concurrent.ReaderWait, ReaderWaits: concurrent.ReaderWaits})
	}
	if c.JSONDir != "" && !c.jsonDefaulted {
		title := fmt.Sprintf("Concurrent serving GOMAXPROCS sweep, %d clients (%d rows, warm sideways workload)",
			c.Clients, c.Rows)
		if err := exp.WriteSeriesJSON(c.JSONDir, "concurrent_serving_cpus",
			title, "query (completion order)", series); err != nil {
			fmt.Printf("json export failed: %v\n", err)
		}
	}
}

// runConcurrentBench is the -clients entry point.
func runConcurrentBench(c concurrentConfig) {
	c = c.withDefaults()
	// Micro-second queries make GC pacing the dominant noise source; relax
	// it during the measurement (applies equally to every mode).
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	fmt.Printf("== concurrent serving: %d clients, %d rows, %d queries, %d-predicate warm pool, %.2f%% selectivity, %.0f%% cold churn ==\n",
		c.Clients, c.Rows, c.Queries, c.Pool, c.Sel*100, c.Churn*100)

	single := func(wrap func(engine.Engine) engine.Engine) func(*store.Relation) engine.Engine {
		return func(rel *store.Relation) engine.Engine {
			return wrap(engine.New(engine.Sideways, rel))
		}
	}

	if len(c.CPUSweep) > 0 {
		c.runCPUSweep(single)
		return
	}

	serialized := c.runMode("serialized", single(engine.Serialized), false)
	concurrent := c.runMode("concurrent", single(engine.Concurrent), false)
	series := []exp.Series{
		{Name: "serialized", Y: serialized.Latencies, Errors: serialized.Errors},
		{Name: "concurrent", Y: concurrent.Latencies, Errors: concurrent.Errors},
	}
	if c.Batch {
		batched := c.runMode("concurrent+batching", single(engine.Concurrent), true)
		series = append(series, exp.Series{Name: "concurrent+batching", Y: batched.Latencies, Errors: batched.Errors})
	}

	if serialized.QPS > 0 {
		fmt.Printf("speedup: %.2fx aggregate QPS over the serialized baseline\n",
			concurrent.QPS/serialized.QPS)
	}
	if c.JSONDir != "" && !c.jsonDefaulted {
		title := fmt.Sprintf("Concurrent serving, %d clients (%d rows, warm sideways workload): serialized %.0f q/s vs concurrent %.0f q/s",
			c.Clients, c.Rows, serialized.QPS, concurrent.QPS)
		if err := exp.WriteSeriesJSON(c.JSONDir, "concurrent_serving",
			title, "query (completion order)", series); err != nil {
			fmt.Printf("json export failed: %v\n", err)
		}
	}

	if c.Shards > 1 {
		name := fmt.Sprintf("sharded x%d", c.Shards)
		sharded := c.runMode(name, func(rel *store.Relation) engine.Engine {
			return shard.New(engine.Sideways, rel, c.Shards, shard.Options{Attr: "A"})
		}, false)
		if concurrent.QPS > 0 {
			fmt.Printf("sharded speedup: %.2fx aggregate QPS over the single-engine concurrent wrapper\n",
				sharded.QPS/concurrent.QPS)
		}
		if c.JSONDir != "" {
			title := fmt.Sprintf("Sharded serving, %d clients x %d shards (%d rows, warm sideways workload): concurrent %.0f q/s vs sharded %.0f q/s",
				c.Clients, c.Shards, c.Rows, concurrent.QPS, sharded.QPS)
			shardSeries := []exp.Series{
				{Name: "concurrent", Y: concurrent.Latencies, Errors: concurrent.Errors},
				{Name: name, Y: sharded.Latencies, Errors: sharded.Errors},
			}
			if err := exp.WriteSeriesJSON(c.JSONDir, "sharded_serving",
				title, "query (completion order)", shardSeries); err != nil {
				fmt.Printf("json export failed: %v\n", err)
			}
		}
	}
}
