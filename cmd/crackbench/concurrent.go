package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"

	"crackstore/internal/engine"
	"crackstore/internal/exp"
	"crackstore/internal/serve"
	"crackstore/internal/store"
	"crackstore/internal/workload"
)

// concurrentConfig drives the -clients mode: a multi-client serving
// benchmark over a warm sideways workload, comparing the serialized
// (global-mutex) baseline against the probe/execute Concurrent wrapper.
type concurrentConfig struct {
	Clients int
	Rows    int
	Queries int
	Pool    int     // distinct predicates in the warm workload
	Sel     float64 // per-query selectivity
	Seed    int64
	JSONDir string
	Batch   bool // also run the admission-batching server variant
}

func (c concurrentConfig) withDefaults() concurrentConfig {
	if c.Rows <= 0 {
		c.Rows = 200_000
	}
	if c.Queries <= 0 {
		c.Queries = 40_000
	}
	if c.Pool <= 0 {
		c.Pool = 64
	}
	if c.Sel <= 0 {
		// Interactive serving is dominated by selective queries (point
		// lookups and narrow ranges); 0.02% of the relation per query
		// mirrors that shape. -sel overrides.
		c.Sel = 0.0002
	}
	return c
}

func (c concurrentConfig) buildRelation() *store.Relation {
	rng := rand.New(rand.NewSource(c.Seed))
	domain := int64(c.Rows)
	return store.Build("R", c.Rows, []string{"A", "B", "C"}, func(attr string, row int) store.Value {
		return rng.Int63n(domain) + 1
	})
}

func (c concurrentConfig) queryPool() []engine.Query {
	gen := workload.New(int64(c.Rows), c.Seed+1)
	pool := make([]engine.Query, c.Pool)
	for i := range pool {
		pool[i] = engine.Query{
			Preds: []engine.AttrPred{{Attr: "A", Pred: gen.Range(c.Sel)}},
			Projs: []string{"B"},
		}
	}
	return pool
}

// runMode measures one wrapper configuration: build a fresh engine, warm
// it by running the whole pool once (every range gets cracked and every
// map aligned), then fire Clients goroutines at a serving layer and
// collect throughput and latency.
func (c concurrentConfig) runMode(name string, wrap func(engine.Engine) engine.Engine, batch bool) serve.Stats {
	rel := c.buildRelation()
	e := wrap(engine.New(engine.Sideways, rel))
	pool := c.queryPool()
	for _, q := range pool {
		e.Query(q)
	}
	// Collect garbage from the build/warm phase so allocation debt does
	// not pollute the measured serving window.
	runtime.GC()

	srv := serve.New(e, serve.Options{Workers: c.Clients, Batch: batch})
	perClient := c.Queries / c.Clients
	var wg sync.WaitGroup
	for g := 0; g < c.Clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				if _, _, err := srv.Do(pool[rng.Intn(len(pool))]); err != nil {
					panic(err)
				}
			}
		}(c.Seed + 100 + int64(g))
	}
	wg.Wait()
	st := srv.Stats()
	srv.Close()
	fmt.Printf("%-22s %8d queries  %10.0f q/s  p50=%-8s p95=%-8s p99=%-8s max=%s\n",
		name, st.Queries, st.QPS, st.P50, st.P95, st.P99, st.Max)
	return st
}

// runConcurrentBench is the -clients entry point.
func runConcurrentBench(c concurrentConfig) {
	c = c.withDefaults()
	// Micro-second queries make GC pacing the dominant noise source; relax
	// it during the measurement (applies equally to every mode).
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	fmt.Printf("== concurrent serving: %d clients, %d rows, %d queries, %d-predicate warm pool, %.2f%% selectivity ==\n",
		c.Clients, c.Rows, c.Queries, c.Pool, c.Sel*100)

	serialized := c.runMode("serialized", engine.Serialized, false)
	concurrent := c.runMode("concurrent", engine.Concurrent, false)
	series := []exp.Series{
		{Name: "serialized", Y: serialized.Latencies},
		{Name: "concurrent", Y: concurrent.Latencies},
	}
	if c.Batch {
		batched := c.runMode("concurrent+batching", engine.Concurrent, true)
		series = append(series, exp.Series{Name: "concurrent+batching", Y: batched.Latencies})
	}

	if serialized.QPS > 0 {
		fmt.Printf("speedup: %.2fx aggregate QPS over the serialized baseline\n",
			concurrent.QPS/serialized.QPS)
	}
	if c.JSONDir != "" {
		title := fmt.Sprintf("Concurrent serving, %d clients (%d rows, warm sideways workload): serialized %.0f q/s vs concurrent %.0f q/s",
			c.Clients, c.Rows, serialized.QPS, concurrent.QPS)
		if err := exp.WriteSeriesJSON(c.JSONDir, "concurrent_serving",
			title, "query (completion order)", series); err != nil {
			fmt.Printf("json export failed: %v\n", err)
		}
	}
}
