package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crackstore/client"
	"crackstore/internal/engine"
	"crackstore/internal/exp"
	"crackstore/internal/obs"
	"crackstore/internal/serve"
	"crackstore/internal/store"
)

// remoteConfig drives the -remote mode: the warm serving workload of the
// -clients benchmark, but fired over TCP at a crackserved daemon, with the
// in-process concurrent wrapper measured alongside as the baseline. The
// daemon must have been started with the same -rows and -seed so both
// sides serve the same relation.
type remoteConfig struct {
	Addr    string
	Clients int
	Conns   int // pooled TCP connections; in-flight depth per conn ~= Clients/Conns
	Rows    int
	Queries int
	Pool    int
	Sel     float64
	Churn   float64 // fraction of queries over cold, never-warmed ranges
	Seed    int64
	JSONDir string
	TraceN  int // sample 1-in-N queries for end-to-end traces (0 = off)
}

func (c remoteConfig) withDefaults() remoteConfig {
	base := concurrentConfig{Rows: c.Rows, Queries: c.Queries, Pool: c.Pool, Sel: c.Sel}.withDefaults()
	c.Rows, c.Queries, c.Pool, c.Sel = base.Rows, base.Queries, base.Pool, base.Sel
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.JSONDir == "" {
		// The remote series is this mode's artifact; emit it next to the
		// committed baselines unless told otherwise.
		c.JSONDir = "bench"
	}
	return c
}

// pipelineDepth is the nominal in-flight requests per pooled connection.
func (c remoteConfig) pipelineDepth() int {
	d := c.Clients / c.Conns
	if d < 1 {
		d = 1
	}
	return d
}

// runRemote replays the warm pool through the wire: warm every query once
// (each range cracks server-side), then fire Clients goroutines issuing
// synchronous pipelined requests over the pooled connections, measuring
// latency from the client side.
func (c remoteConfig) runRemote(pool []engine.Query) (serve.Stats, int) {
	// With -trace N, 1-in-N requests carry a trace ID over the wire; the
	// client re-anchors the server's queue/execute/crack spans into its own
	// timeline and we keep the slowest ones to print after the run.
	var (
		traceMu sync.Mutex
		traces  []*obs.Trace
	)
	opts := client.Options{Conns: c.Conns}
	if c.TraceN > 0 {
		opts.TraceSample = c.TraceN
		opts.OnTrace = func(tr *obs.Trace) {
			traceMu.Lock()
			traces = append(traces, tr)
			traceMu.Unlock()
		}
	}
	cl, err := client.Dial(c.Addr, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: dial %s: %v (is crackserved running with matching -rows/-seed?)\n", c.Addr, err)
		os.Exit(1)
	}
	defer cl.Close()

	before, err := cl.Stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: remote stats: %v\n", err)
		os.Exit(1)
	}
	for _, q := range pool {
		if _, _, err := cl.Query(q); err != nil {
			fmt.Fprintf(os.Stderr, "crackbench: warm query failed: %v\n", err)
			os.Exit(1)
		}
	}
	runtime.GC()

	perClient := c.Queries / c.Clients
	latCh := make(chan []time.Duration, c.Clients)
	var clientErrs atomic.Int64
	// Cold queries land on never-warmed ranges and crack server-side; the
	// geometry is shared with the in-process arm so both draw identical
	// workloads.
	width, span := concurrentConfig{Rows: c.Rows, Sel: c.Sel}.churnGeometry()
	t0 := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < c.Clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lats := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				q := pool[rng.Intn(len(pool))]
				if c.Churn > 0 && rng.Float64() < c.Churn {
					q = coldQuery(rng, width, span)
				}
				qt0 := time.Now()
				if _, _, err := cl.Query(q); err != nil {
					clientErrs.Add(1)
					continue
				}
				lats = append(lats, time.Since(qt0))
			}
			latCh <- lats
		}(c.Seed + 100 + int64(g))
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(latCh)
	var all []time.Duration
	for lats := range latCh {
		all = append(all, lats...)
	}

	after, err := cl.Stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: remote stats: %v\n", err)
		os.Exit(1)
	}
	// Server-counted failures (e.g. timeouts) also reach the client as
	// error responses, so the client-side count already covers them —
	// summing the two would double-count. The server delta is kept
	// separately as a cross-check for failures whose response was lost.
	serverErrs := after.Errors - before.Errors
	errs := int(clientErrs.Load())
	if serverErrs > errs {
		errs = serverErrs
	}
	st := serve.Summarize(all, errs, elapsed)
	fmt.Printf("%-22s %8d queries  %3d errors  %10.0f q/s  p50=%-8s p95=%-8s p99=%-8s max=%s\n",
		fmt.Sprintf("remote (%d conns)", c.Conns), st.Queries, st.Errors, st.QPS, st.P50, st.P95, st.P99, st.Max)
	if c.TraceN > 0 {
		printSlowestTraces(traces, 10)
	}
	return st, serverErrs
}

// printSlowestTraces prints up to n collected traces, slowest first, as
// the same one-line JSON the server emits, so the two sides of a trace ID
// can be grepped together.
func printSlowestTraces(traces []*obs.Trace, n int) {
	if len(traces) == 0 {
		fmt.Println("traces: none collected (is the daemon a current build speaking protocol v2?)")
		return
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].Total > traces[j].Total })
	if n > len(traces) {
		n = len(traces)
	}
	fmt.Printf("traces: %d collected, %d slowest:\n", len(traces), n)
	for _, tr := range traces[:n] {
		tr.WriteJSON(os.Stdout)
	}
}

// runRemoteBench is the -remote entry point. It exits nonzero when any
// query failed on either side of the wire, so CI smoke runs catch protocol
// regressions.
func runRemoteBench(c remoteConfig) {
	c = c.withDefaults()
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	fmt.Printf("== remote serving vs in-process: %s, %d clients over %d conns (pipeline ~%d), %d rows, %d queries ==\n",
		c.Addr, c.Clients, c.Conns, c.pipelineDepth(), c.Rows, c.Queries)

	// In-process concurrent baseline over the identical relation/workload.
	base := concurrentConfig{
		Clients: c.Clients, Rows: c.Rows, Queries: c.Queries,
		Pool: c.Pool, Sel: c.Sel, Churn: c.Churn, Seed: c.Seed,
	}.withDefaults()
	inproc := base.runMode("in-process concurrent", func(rel *store.Relation) engine.Engine {
		return engine.Concurrent(engine.New(engine.Sideways, rel))
	}, false)

	remote, serverErrs := c.runRemote(base.queryPool())

	if inproc.QPS > 0 {
		fmt.Printf("remote/in-process throughput ratio: %.2fx\n", remote.QPS/inproc.QPS)
	}
	if c.JSONDir != "" {
		depth := c.pipelineDepth()
		title := fmt.Sprintf("Remote serving, %d clients over %d conns (%d rows, %.0f%% cold churn, sideways workload): in-process %.0f q/s vs remote %.0f q/s",
			c.Clients, c.Conns, c.Rows, c.Churn*100, inproc.QPS, remote.QPS)
		series := []exp.Series{
			{Name: "in-process concurrent", Y: inproc.Latencies, Errors: inproc.Errors,
				Transport: "in-process", Conns: 0, Pipeline: c.Clients},
			{Name: "remote tcp", Y: remote.Latencies, Errors: remote.Errors,
				Transport: "tcp", Conns: c.Conns, Pipeline: depth},
		}
		meta := map[string]string{
			"rows":        fmt.Sprint(c.Rows),
			"queries":     fmt.Sprint(c.Queries),
			"clients":     fmt.Sprint(c.Clients),
			"conns":       fmt.Sprint(c.Conns),
			"selectivity": fmt.Sprint(c.Sel),
			"churn":       fmt.Sprint(c.Churn),
			"seed":        fmt.Sprint(c.Seed),
		}
		if err := exp.WriteSeriesJSONMeta(c.JSONDir, "remote_serving",
			title, "query (completion order)", meta, series); err != nil {
			fmt.Printf("json export failed: %v\n", err)
		}
	}
	if remote.Errors > 0 {
		fmt.Fprintf(os.Stderr, "crackbench: remote run unhealthy: %d errors (%d server-side)\n",
			remote.Errors, serverErrs)
		os.Exit(1)
	}
}
