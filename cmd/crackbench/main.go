// Command crackbench regenerates the synthetic experiments of the paper's
// Sections 3.6 and 4.2: Exp1-Exp6 (Figures 4-7 and the cost-breakdown
// table) and the partial-map experiments (Figures 9-13).
//
// Usage:
//
//	crackbench -exp exp1            # one experiment at default scale
//	crackbench -exp all             # everything
//	crackbench -exp fig9 -rows 1000000 -queries 1000   # paper scale
//	crackbench -exp exp2 -scale paper
//	crackbench -exp exp1 -json bench_out               # BENCH_*.json series
//	crackbench -clients 8 -json bench_out              # concurrent serving
//	crackbench -shards 4 -clients 8                    # sharded serving
//	crackbench -policy all -pattern all                # adaptive policies
//	crackbench -remote localhost:9090 -clients 8       # vs crackserved
//	crackbench -chaos                                  # fault-injection sweep
//	crackbench -remote localhost:9090 -chaos           # verified chaos smoke
//	crackbench -mvcc                                   # snapshot reads vs RWMutex
//	crackbench -clients 8 -cpus 1,2,4                  # GOMAXPROCS sweep
//	crackbench -durable                                # warm restart vs cold rebuild
//	crackbench -remote :9090 -durable-smoke st.json    # churn until daemon dies
//	crackbench -remote :9090 -durable-verify st.json   # acked writes survived?
//
// Experiment ids: exp1 exp2 exp3 exp4 exp5 exp6 fig9 fig10 fig11 fig12
// fig13 ablation all. Sizes default to a laptop-friendly scale; -scale paper uses
// the paper's sizes (expect minutes per experiment).
//
// With -policy and/or -pattern the command runs the adaptive-cracking
// comparison instead: for every (access pattern, cracking policy) pair it
// replays a range-query stream against a fresh cracking engine and emits
// bench/BENCH_adaptive_workloads.json. Sequential sweeps and zoom-ins
// degrade plain cracking toward quadratic total work; the stochastic and
// capped policies pre-split oversized pieces and stay near-linear.
//
// With -clients N the command instead runs the concurrent serving
// benchmark: N client goroutines fire a warm sideways workload through the
// serving layer, once against the serialized (global-mutex) baseline and
// once against the probe/execute Concurrent wrapper, reporting aggregate
// QPS, tail latencies, and error counts (-serve-batch adds the
// admission-batching variant). Adding -shards S also measures the relation
// range-partitioned across S independently locked engines and emits
// BENCH_sharded_serving.json next to the single-engine series.
//
// With -remote addr the same workload is instead fired over TCP at a
// crackserved daemon (start it first with matching -rows/-seed; restart it
// before churn runs so cold ranges are actually cold) and compared against
// the in-process concurrent baseline, emitting BENCH_remote_serving.json.
// The run exits nonzero if any query failed on either side of the wire, so
// CI can use it as a protocol smoke test.
//
// With -chaos the command measures the resilience layer: the warm workload
// travels through an in-process fault-injecting proxy (internal/faultnet)
// at 0%/1%/5% aggregate fault rates with client retries on and off, plus a
// hedged-read segment and an overload segment at 2x the server's admission
// capacity, emitting BENCH_chaos_resilience.json with retry/hedge/shed/
// redial counters per series. Combined with -remote it instead runs a
// verified chaos smoke against a live daemon — every answer checked
// against a local engine over the identical relation — and exits nonzero
// on any wrong answer or residual error (the CI chaos job).
//
// With -mvcc the command runs the snapshot-reads benchmark: a warm
// read-only workload executes while one background writer continuously
// cracks a cold attribute and streams insertions, measured under the
// Snapshot wrapper (lock-free epoch-protected reads), under the
// Concurrent RWMutex wrapper, and against a no-writer baseline — at each
// GOMAXPROCS value of the -cpus sweep (default 1,2,4). It emits
// bench/BENCH_mvcc_reads.json with per-read latency samples plus reader-
// wait and version-publish/reclaim counters per series; the claim pinned
// by the artifact is that snapshot reads keep near-baseline throughput
// and a p99 orders of magnitude below the RWMutex arm's, because readers
// never wait for a crack.
//
// The -cpus flag also applies to -clients: the serialized/concurrent
// comparison is repeated at each GOMAXPROCS value, one series per value,
// so multi-core scaling claims are reproducible from the artifact.
//
// With -durable the command benchmarks the durability subsystem locally:
// it cracks a durable store with a query pool, closes it cleanly, reopens
// it (recovery replays the crack tape), and fires the pool again — against
// a cold from-scratch engine answering the identical queries — plus a
// per-insert ack-latency panel for each WAL fsync mode, emitting
// bench/BENCH_durability.json. The pinned claim: a warm restart answers
// its first queries without re-paying any crack, and group commit shares
// fsyncs across concurrent writers.
//
// -durable-smoke and -durable-verify are the two halves of the CI
// crash-recovery job, both pointed at a `crackserved -data-dir` daemon via
// -remote: smoke churns the daemon with out-of-domain sentinel inserts
// (interleaved with cracking queries) until CI SIGKILLs it, recording
// which inserts were acked; verify runs against the restarted daemon and
// exits nonzero unless every acked insert survived exactly once and no
// row exists that was never submitted.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"crackstore/internal/exp"
	"crackstore/internal/workload"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment id (exp1..exp6, fig9..fig13, all)")
		rows    = flag.Int("rows", 0, "base relation rows (0 = scale default)")
		queries = flag.Int("queries", 0, "queries per sequence (0 = scale default)")
		seed    = flag.Int64("seed", 1, "workload seed")
		scale   = flag.String("scale", "default", "default | paper")
		csvDir  = flag.String("csv", "", "also write full series as CSV files into this directory")
		jsonDir = flag.String("json", "", "also write per-query cumulative latency series as BENCH_*.json files into this directory")
		clients = flag.Int("clients", 0, "run the concurrent serving benchmark with this many client goroutines instead of the paper experiments")
		shards  = flag.Int("shards", 0, "concurrent mode: also measure the relation range-partitioned across this many independently locked engines (emits BENCH_sharded_serving.json; -json defaults to bench/)")
		srvPool = flag.Int("pool", 0, "concurrent mode: distinct predicates in the warm workload (0 = default)")
		srvSel  = flag.Float64("sel", 0, "concurrent mode: per-query selectivity (0 = default 0.0002)")
		srvChrn = flag.Float64("churn", 0, "concurrent mode: fraction of queries over cold never-warmed ranges (each one cracks; 0 = fully warm workload)")
		srvBat  = flag.Bool("serve-batch", false, "concurrent mode: also run the admission-batching server variant")
		mvcc    = flag.Bool("mvcc", false, "run the snapshot-reads benchmark: a warm read workload under a continuously cracking background writer, Snapshot (lock-free epoch-protected reads) vs Concurrent (RWMutex) vs a no-writer baseline, swept over -cpus (emits BENCH_mvcc_reads.json; -json defaults to bench/)")
		cpus    = flag.String("cpus", "", "comma-separated GOMAXPROCS values to sweep (serving modes emit one series per value; default: -mvcc sweeps 1,2,4, other modes run at the process default)")
		policy  = flag.String("policy", "", "adaptive mode: cracking policy to measure (default|stochastic|capped|all); runs the policy-vs-pattern comparison and emits BENCH_adaptive_workloads.json (-json defaults to bench/)")
		pattern = flag.String("pattern", "", "adaptive mode: access pattern to measure (random|sequential|zoomin|periodic|all)")
		remote  = flag.String("remote", "", "run the remote serving benchmark against a crackserved daemon at this address (start it with matching -rows/-seed); emits BENCH_remote_serving.json and exits nonzero on any error")
		conns   = flag.Int("conns", 0, "remote mode: pooled TCP connections (0 = default 2)")
		chaos   = flag.Bool("chaos", false, "run the chaos resilience benchmark: fire the warm workload through a fault-injecting proxy, sweeping fault rates with retries on/off plus a 2x-capacity overload segment (emits BENCH_chaos_resilience.json); with -remote, instead run a verified chaos smoke against the daemon and exit nonzero on any wrong answer")
		chRate  = flag.Float64("chaos-rate", 0.01, "chaos smoke (-remote -chaos): aggregate fault rate injected by the local proxy")
		chSeed  = flag.Int64("chaos-seed", 7, "chaos mode: fault decision seed")
		durable = flag.Bool("durable", false, "run the durability benchmark: warm restart (crack-tape replay) vs cold rebuild on first-query latency, plus per-insert ack latency under each WAL fsync mode (emits BENCH_durability.json; -json defaults to bench/)")
		durSmk  = flag.String("durable-smoke", "", "churn a crackserved -data-dir daemon (via -remote) with sentinel inserts until it dies, writing the acked-write manifest to this file for -durable-verify (the CI crash-recovery job)")
		durVfy  = flag.String("durable-verify", "", "verify a restarted daemon (via -remote) against a -durable-smoke manifest: every acked insert present exactly once; exits nonzero on lost or duplicated acked writes")
		obsBnch = flag.Bool("obs", false, "run the observability overhead benchmark: the warm serving workload uninstrumented, instrumented-and-scraped, and with 1/1024 trace sampling (emits BENCH_observability.json; -json defaults to bench/)")
		traceN  = flag.Int("trace", 0, "remote mode: sample 1-in-N queries for end-to-end tracing and print the slowest traces after the run (needs a crackserved started with protocol v2, i.e. any current build)")
	)
	flag.Parse()

	cpuSweep, err := parseCPUs(*cpus)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -cpus: %v\n", err)
		os.Exit(2)
	}

	if *durSmk != "" || *durVfy != "" {
		if *remote == "" {
			fmt.Fprintln(os.Stderr, "-durable-smoke / -durable-verify need -remote addr (a crackserved -data-dir daemon)")
			os.Exit(2)
		}
		if *durSmk != "" {
			runDurableSmoke(*remote, *durSmk, *rows, *seed)
		} else {
			runDurableVerify(*remote, *durVfy)
		}
		return
	}

	if *durable {
		runDurableBench(durableConfig{
			Rows:    *rows,
			Queries: *queries,
			Sel:     *srvSel,
			Seed:    *seed,
			JSONDir: *jsonDir,
		})
		return
	}

	if *mvcc {
		runMvccBench(mvccConfig{
			Clients: *clients,
			Rows:    *rows,
			Queries: *queries,
			Pool:    *srvPool,
			Sel:     *srvSel,
			Seed:    *seed,
			JSONDir: *jsonDir,
			CPUs:    cpuSweep,
		})
		return
	}

	if *obsBnch {
		runObsBench(obsConfig{
			Clients: *clients,
			Rows:    *rows,
			Queries: *queries,
			Pool:    *srvPool,
			Sel:     *srvSel,
			Seed:    *seed,
			JSONDir: *jsonDir,
		})
		return
	}

	if *remote != "" && *chaos {
		runRemoteChaosBench(remoteConfig{
			Addr:    *remote,
			Clients: *clients,
			Conns:   *conns,
			Rows:    *rows,
			Queries: *queries,
			Pool:    *srvPool,
			Sel:     *srvSel,
			Seed:    *seed,
		}, *chRate, *chSeed)
		return
	}
	if *chaos {
		runChaosBench(chaosConfig{
			Clients:   *clients,
			Conns:     *conns,
			Rows:      *rows,
			Queries:   *queries,
			Pool:      *srvPool,
			Sel:       *srvSel,
			Seed:      *seed,
			FaultSeed: *chSeed,
			JSONDir:   *jsonDir,
		})
		return
	}

	if *remote != "" {
		runRemoteBench(remoteConfig{
			Addr:    *remote,
			Clients: *clients,
			Conns:   *conns,
			Rows:    *rows,
			Queries: *queries,
			Pool:    *srvPool,
			Sel:     *srvSel,
			Churn:   *srvChrn, // cold ranges need a freshly started daemon to actually be cold
			Seed:    *seed,
			JSONDir: *jsonDir,
			TraceN:  *traceN,
		})
		return
	}

	if *policy != "" || *pattern != "" {
		runAdaptiveBench(*rows, *queries, *seed, *jsonDir, *policy, *pattern)
		return
	}

	if *shards > 0 && *clients <= 0 {
		fmt.Fprintln(os.Stderr, "-shards only applies to the serving benchmark; add -clients N")
		os.Exit(2)
	}
	if *clients > 0 {
		runConcurrentBench(concurrentConfig{
			Clients:  *clients,
			Shards:   *shards,
			Rows:     *rows,
			Queries:  *queries,
			Pool:     *srvPool,
			Sel:      *srvSel,
			Churn:    *srvChrn,
			Seed:     *seed,
			JSONDir:  *jsonDir,
			Batch:    *srvBat,
			CPUSweep: cpuSweep,
		})
		return
	}

	cfg := exp.Default()
	if *scale == "paper" {
		cfg = exp.PaperScale()
	}
	cfg.Seed = *seed
	cfg.W = os.Stdout
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	cfg.CSVDir = *csvDir
	cfg.JSONDir = *jsonDir

	// The Section 4.2 experiments use a 10x smaller relation than the
	// Section 3.6 ones in the paper (1e6 vs 1e7); mirror that ratio unless
	// rows were given explicitly.
	partialCfg := cfg
	if *rows == 0 {
		partialCfg.Rows = cfg.Rows / 2
		if partialCfg.Rows < 1000 {
			partialCfg.Rows = cfg.Rows
		}
	}

	run := func(id string, f func()) {
		if *expID != "all" && *expID != id {
			return
		}
		// Collect garbage from earlier experiments so their allocations do
		// not pollute this experiment's timings.
		runtime.GC()
		t0 := time.Now()
		f()
		fmt.Printf("\n[%s completed in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}

	run("exp1", func() { exp.Exp1(cfg) })
	run("exp2", func() { exp.Exp2(cfg) })
	run("exp3", func() { exp.Exp3(cfg) })
	run("exp4", func() { exp.Exp4(cfg) })
	run("exp5", func() { exp.Exp5(cfg) })
	run("exp6", func() {
		hf := workload.HFLV
		lf := workload.LFHV
		if cfg.Queries < lf.Frequency {
			lf.Frequency = cfg.Queries / 2
			lf.Volume = cfg.Queries / 2
		}
		exp.Exp6(cfg, lf)
		exp.Exp6(cfg, hf)
	})
	run("fig9", func() { exp.Fig9(partialCfg) })
	run("fig10", func() { exp.Fig10(partialCfg) })
	run("fig11", func() { exp.Fig11(partialCfg) })
	run("fig12", func() { exp.Fig12(partialCfg) })
	run("fig13", func() { exp.Fig13(partialCfg) })
	run("ablation", func() { exp.Ablations(cfg) })

	switch *expID {
	case "all", "exp1", "exp2", "exp3", "exp4", "exp5", "exp6",
		"fig9", "fig10", "fig11", "fig12", "fig13", "ablation":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expID)
		flag.Usage()
		os.Exit(2)
	}
}

// parseCPUs parses the -cpus sweep list ("1,2,4") into GOMAXPROCS values.
func parseCPUs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("%q is not a positive CPU count", part)
		}
		out = append(out, p)
	}
	return out, nil
}
