package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"crackstore/client"
	"crackstore/internal/engine"
	"crackstore/internal/exp"
	"crackstore/internal/faultnet"
	"crackstore/internal/netserve"
	"crackstore/internal/serve"
)

// chaosConfig drives the -chaos mode: the warm serving workload fired at an
// in-process daemon THROUGH a fault-injecting proxy, swept across fault
// rates with retries on and off, plus an overload segment that pushes 2x
// the admission capacity to show the server shedding in-band instead of
// stalling. The artifact is bench/BENCH_chaos_resilience.json.
type chaosConfig struct {
	Clients   int
	Conns     int
	Rows      int
	Queries   int // per segment
	Pool      int
	Sel       float64
	Seed      int64
	FaultSeed int64
	JSONDir   string
}

func (c chaosConfig) withDefaults() chaosConfig {
	base := concurrentConfig{Rows: c.Rows, Pool: c.Pool, Sel: c.Sel}.withDefaults()
	c.Rows, c.Pool, c.Sel = base.Rows, base.Pool, base.Sel
	if c.Sel <= 0.0002 {
		// Chaos runs need queries whose execution cost dominates the
		// per-fault recovery cost (a redial plus a sub-millisecond backoff),
		// or the recovery ratio measures the retry schedule rather than the
		// resilience layer; 2% selectivity gives ~4k-row answers.
		c.Sel = 0.02
	}
	if c.Queries <= 0 {
		c.Queries = 8000
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = 7
	}
	if c.JSONDir == "" {
		c.JSONDir = "bench"
	}
	return c
}

// chaosSegment is one measured pass through the fault proxy.
type chaosSegment struct {
	name    string
	rate    float64
	retries bool
	hedge   bool
	// retryBase/retryMax override the client backoff schedule; zero means
	// the aggressive fault-recovery defaults. The overload segment sets a
	// base near the service time so retries land after a slot has actually
	// drained rather than hammering a still-full server, and a deeper
	// retry budget (maxRetries > 0 overrides the client default) because
	// sustained overload sheds the same query repeatedly by design.
	retryBase, retryMax time.Duration
	maxRetries          int
}

// runChaosSegment fires the warm pool through a fresh proxy at the
// segment's fault rate and returns the series with latencies, errors, and
// the client resilience counters.
func (c chaosConfig) runChaosSegment(seg chaosSegment, target string, pool []engine.Query) (exp.Series, serve.Stats) {
	px, err := faultnet.NewProxy("127.0.0.1:0", target, faultnet.Mix(seg.rate, c.FaultSeed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: chaos proxy: %v\n", err)
		os.Exit(1)
	}
	defer px.Close()

	// An aggressive retry schedule by default: recovery from a killed
	// connection is a redial plus a couple hundred microseconds, not
	// milliseconds.
	if seg.retryBase == 0 {
		seg.retryBase = 100 * time.Microsecond
	}
	if seg.retryMax == 0 {
		seg.retryMax = 5 * time.Millisecond
	}
	copts := client.Options{
		Conns: c.Conns, Hedge: seg.hedge,
		RetryBase: seg.retryBase, RetryMax: seg.retryMax,
	}
	if !seg.retries {
		copts.MaxRetries = -1
	} else if seg.maxRetries > 0 {
		copts.MaxRetries = seg.maxRetries
	}
	cl, err := client.Dial(px.Addr().String(), copts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: chaos dial: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()

	perClient := c.Queries / c.Clients
	latCh := make(chan []time.Duration, c.Clients)
	var errs atomic.Int64
	t0 := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < c.Clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lats := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				q := pool[rng.Intn(len(pool))]
				qt0 := time.Now()
				var err error
				if seg.hedge {
					// The warm pool is crack-free, so read-only queries are
					// never refused — the hedged path answers all of them.
					var ok bool
					if _, _, ok, err = cl.QueryRO(q); err == nil && !ok {
						err = fmt.Errorf("warm query refused as read-only")
					}
				} else {
					_, _, err = cl.Query(q)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				lats = append(lats, time.Since(qt0))
			}
			latCh <- lats
		}(c.Seed + 100 + int64(g))
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(latCh)
	var all []time.Duration
	for lats := range latCh {
		all = append(all, lats...)
	}

	st := serve.Summarize(all, int(errs.Load()), elapsed)
	ctr := cl.Counters()
	fmt.Printf("%-26s %8d ok  %5d errors  %9.0f q/s  p50=%-8s p99=%-8s retries=%-5d hedges=%-5d sheds=%-5d redials=%d\n",
		seg.name, st.Queries, st.Errors, st.QPS, st.P50, st.P99,
		ctr.Retries, ctr.Hedges, ctr.Sheds, ctr.Redials)
	return exp.Series{
		Name: seg.name, Y: all, Errors: int(errs.Load()),
		Transport: "tcp+faultproxy", Conns: c.Conns,
		FaultRate: seg.rate,
		Retries:   int(ctr.Retries), Hedges: int(ctr.Hedges),
		Sheds: int(ctr.Sheds), Redials: int(ctr.Redials),
	}, st
}

// slowEngine adds a fixed blocking service time to every query: the model
// of an overloaded remote server whose queries wait on I/O or an
// oversubscribed CPU. The overload segment needs service time the
// scheduler can observe — a purely CPU-bound query on a single-P runtime
// starves the connection readers, so the server never even decodes the
// backlog the watermark is supposed to shed. With a blocking service time
// the readers keep decoding while a query is "executing", the worker
// semaphore backs up, and admission control has something to measure.
type slowEngine struct {
	engine.Engine
	delay time.Duration
}

func (s slowEngine) Query(q engine.Query) (engine.Result, engine.Cost) {
	time.Sleep(s.delay)
	return s.Engine.Query(q)
}

func (s slowEngine) QueryRO(q engine.Query) (engine.Result, engine.Cost, bool) {
	time.Sleep(s.delay)
	return s.Engine.QueryRO(q)
}

// runOverloadSegment drives 2x the server's admission capacity at a
// deliberately tiny server (1 worker, 1-deep admission queue) and shows the
// watermark shedding in-band: every query still completes (retries absorb
// the sheds), sheds are counted, and the tail stays bounded instead of the
// whole pipeline stalling.
func (c chaosConfig) runOverloadSegment(pool []engine.Query) exp.Series {
	rel := concurrentConfig{Rows: c.Rows, Seed: c.Seed}.buildRelation()
	// A scan engine (no read-only fast path, so every query takes the
	// admission path instead of answering inline on the reader) slowed to
	// a 2ms blocking service time per query.
	e := slowEngine{Engine: engine.New(engine.Scan, rel), delay: 2 * time.Millisecond}
	srv, err := netserve.Listen("127.0.0.1:0", e, netserve.Options{
		Serve: serve.Options{Workers: 1, MaxWaiting: 1},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: overload server: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	// Admission capacity is Workers + MaxWaiting = 2; drive 2x that in
	// concurrent clients.
	over := c
	over.Clients = 4
	over.Queries = c.Queries / 16
	s, _ := over.runChaosSegment(chaosSegment{
		name: "overload 2x capacity", rate: 0, retries: true,
		retryBase: 2 * time.Millisecond, retryMax: 50 * time.Millisecond,
		maxRetries: 10,
	}, srv.Addr().String(), pool)
	if st := srv.Stats(); st.Sheds == 0 {
		fmt.Println("warning: overload segment recorded no sheds — capacity was never exceeded")
	} else if s.Errors == 0 {
		fmt.Printf("overload segment: server shed %d requests in-band; retries absorbed every shed\n", st.Sheds)
	} else {
		// Residual errors are the retry budget running out under sustained
		// overload — the bounded alternative to retrying forever.
		fmt.Printf("overload segment: server shed %d requests in-band; %d queries exhausted their retry budget\n",
			st.Sheds, s.Errors)
	}
	return s
}

// runChaosBench is the -chaos entry point (without -remote): measure the
// resilience layer end to end against injected faults and overload, and
// land the numbers as bench/BENCH_chaos_resilience.json.
func runChaosBench(c chaosConfig) {
	c = c.withDefaults()
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	fmt.Printf("== chaos resilience: %d clients over %d conns, %d rows, %d queries/segment, fault seed %d ==\n",
		c.Clients, c.Conns, c.Rows, c.Queries, c.FaultSeed)

	base := concurrentConfig{Rows: c.Rows, Seed: c.Seed, Pool: c.Pool, Sel: c.Sel}.withDefaults()
	e := engine.Concurrent(engine.New(engine.Sideways, base.buildRelation()))
	pool := base.queryPool()
	for _, q := range pool {
		e.Query(q)
	}
	srv, err := netserve.Listen("127.0.0.1:0", e, netserve.Options{
		Serve: serve.Options{Workers: c.Clients},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: chaos server: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	runtime.GC()

	segments := []chaosSegment{
		{name: "0% faults, retries on", rate: 0, retries: true},
		{name: "1% faults, retries on", rate: 0.01, retries: true},
		{name: "5% faults, retries on", rate: 0.05, retries: true},
		{name: "1% faults, retries off", rate: 0.01, retries: false},
		{name: "5% faults, retries off", rate: 0.05, retries: false},
		{name: "5% faults, retries+hedge", rate: 0.05, retries: true, hedge: true},
	}
	series := make([]exp.Series, 0, len(segments)+1)
	qps := make([]float64, len(segments))
	for i, seg := range segments {
		s, st := c.runChaosSegment(seg, srv.Addr().String(), pool)
		series = append(series, s)
		qps[i] = st.QPS
	}
	series = append(series, c.runOverloadSegment(pool))

	if c.JSONDir != "" {
		title := fmt.Sprintf("Chaos resilience, %d clients over %d conns (%d rows, warm sideways workload): fault sweep with retries on/off plus 2x-capacity overload",
			c.Clients, c.Conns, c.Rows)
		meta := map[string]string{
			"rows":       fmt.Sprint(c.Rows),
			"queries":    fmt.Sprint(c.Queries),
			"clients":    fmt.Sprint(c.Clients),
			"conns":      fmt.Sprint(c.Conns),
			"seed":       fmt.Sprint(c.Seed),
			"fault_seed": fmt.Sprint(c.FaultSeed),
			"overload":   "4 clients vs admission capacity 2 (1 worker + 1 waiting)",
		}
		if err := exp.WriteSeriesJSONMeta(c.JSONDir, "chaos_resilience",
			title, "query (completion order)", meta, series); err != nil {
			fmt.Printf("json export failed: %v\n", err)
		}
	}

	// Headline number: how much of the fault-free throughput survives 1%
	// faults with retries on.
	if qps[0] > 0 && qps[1] > 0 {
		fmt.Printf("throughput recovery at 1%% faults (retries on): %.0f%% of fault-free QPS\n",
			100*qps[1]/qps[0])
	}
	for _, s := range series {
		if s.FaultRate > 0 && s.Retries == 0 && s.Redials == 0 && s.Errors == 0 {
			fmt.Printf("warning: segment %q hit no faults — rates too low for this run length\n", s.Name)
		}
	}
}

func sum(d []time.Duration) time.Duration {
	var t time.Duration
	for _, x := range d {
		t += x
	}
	return t
}

// runRemoteChaosBench is the `-remote addr -chaos` verified mode: wrap the
// daemon in a local fault proxy at the given rate and replay the warm pool
// with every answer VERIFIED against a local engine over the identical
// synthetic relation (same -rows/-seed as the daemon). Any wrong answer or
// residual error exits nonzero — the CI chaos smoke job runs exactly this.
func runRemoteChaosBench(c remoteConfig, rate float64, faultSeed int64) {
	c = c.withDefaults()
	fmt.Printf("== chaos smoke vs %s: %.1f%% faults (seed %d), %d clients over %d conns, %d queries ==\n",
		c.Addr, rate*100, faultSeed, c.Clients, c.Conns, c.Queries)

	// The daemon built its relation from -rows/-seed; rebuild it here and
	// answer the pool locally to know the ground truth. Cracking never
	// changes answers, so matching result cardinalities per query is
	// layout-independent.
	base := concurrentConfig{Rows: c.Rows, Seed: c.Seed, Pool: c.Pool, Sel: c.Sel}.withDefaults()
	local := engine.New(engine.Sideways, base.buildRelation())
	pool := base.queryPool()
	want := make([]int, len(pool))
	for i, q := range pool {
		res, _ := local.Query(q)
		want[i] = res.N
	}

	px, err := faultnet.NewProxy("127.0.0.1:0", c.Addr, faultnet.Mix(rate, faultSeed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: chaos proxy: %v\n", err)
		os.Exit(1)
	}
	defer px.Close()
	cl, err := client.Dial(px.Addr().String(), client.Options{Conns: c.Conns})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crackbench: dial %s via fault proxy: %v (is crackserved running with matching -rows/-seed?)\n", c.Addr, err)
		os.Exit(1)
	}
	defer cl.Close()

	var wrong, errs atomic.Int64
	perClient := c.Queries / c.Clients
	var wg sync.WaitGroup
	for g := 0; g < c.Clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				j := rng.Intn(len(pool))
				res, _, err := cl.Query(pool[j])
				if err != nil {
					errs.Add(1)
					continue
				}
				if res.N != want[j] {
					wrong.Add(1)
				}
			}
		}(c.Seed + 100 + int64(g))
	}
	wg.Wait()

	ctr := cl.Counters()
	fmt.Printf("chaos smoke: %d queries, %d wrong answers, %d errors; retries=%d hedges=%d sheds=%d redials=%d\n",
		perClient*c.Clients, wrong.Load(), errs.Load(), ctr.Retries, ctr.Hedges, ctr.Sheds, ctr.Redials)
	if wrong.Load() > 0 {
		fmt.Fprintf(os.Stderr, "crackbench: CHAOS FAILURE: %d wrong answers through the fault proxy\n", wrong.Load())
		os.Exit(1)
	}
	if errs.Load() > 0 {
		fmt.Fprintf(os.Stderr, "crackbench: chaos smoke unhealthy: %d residual errors despite retries\n", errs.Load())
		os.Exit(1)
	}
	if rate > 0 && ctr.Retries == 0 && ctr.Redials == 0 {
		fmt.Println("warning: no faults were hit — increase -queries or -chaos-rate for a meaningful smoke")
	}
}
