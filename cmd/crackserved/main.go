// Command crackserved serves a crackstore engine over TCP: the network
// daemon of the remote-serving subsystem. It builds a synthetic relation
// (the same shape crackbench uses: attributes A, B, C with uniform values
// in [1, rows], deterministic under -seed), wraps it in the chosen engine,
// and listens for internal/wire clients — crackstore.Dial, or
// crackbench -remote for load generation.
//
// Usage:
//
//	crackserved -addr :9090                                # sideways engine
//	crackserved -kind selcrack -rows 1000000 -workers 8
//	crackserved -shards 4 -policy stochastic               # sharded + adaptive
//	crackserved -timeout 250ms                             # bound each query
//	crackserved -fault-rate 0.01 -fault-seed 7             # chaos debug mode
//	crackserved -data-dir /var/lib/crack -fsync group      # durable engine
//
// The daemon drains gracefully on SIGINT/SIGTERM: it stops accepting,
// answers everything in flight, prints the serving statistics, and exits.
// A per-query -timeout keeps one slow crack from wedging a connection's
// pipeline (timed-out queries fail with a distinct error, counted in the
// stats, while the crack completes in the background).
//
// -fault-rate wraps the listener in internal/faultnet: accepted
// connections corrupt, truncate, reset, short-write, and delay their
// streams at the given aggregate rate, with decisions seeded by
// -fault-seed. This is a debug mode for exercising client resilience
// (retries, idempotent writes, redials) against a real daemon without a
// separate proxy; see also `crackbench -chaos`. -max-waiting and
// -max-inflight bound admission: requests beyond them draw an in-band
// overloaded response (shed) instead of queueing without bound.
//
// -data-dir makes the engine durable: acked writes go through a write-
// ahead log in that directory before they are applied, reorganizing
// queries are recorded on a crack tape, and restarts recover the store —
// warm — from the last checkpoint plus the log tail. On a fresh directory
// the synthetic relation seeds the store; on restart the directory wins
// and -rows/-seed are ignored. Startup logs whether recovery was clean
// (clean-shutdown marker honored, zero records replayed) or replayed
// (records and bytes applied, torn tail truncated). The SIGINT/SIGTERM
// drain flushes and fsyncs the log, writes a checkpoint and the clean-
// shutdown marker, so the next start skips replay. -fsync picks the
// durability mode (group | always | none); -data-dir is incompatible with
// -shards and -snapshot.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crackstore/internal/crack"
	"crackstore/internal/engine"
	"crackstore/internal/faultnet"
	"crackstore/internal/netserve"
	"crackstore/internal/obs"
	"crackstore/internal/serve"
	"crackstore/internal/shard"
	"crackstore/internal/store"
	"crackstore/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", ":9090", "listen address")
		kindName = flag.String("kind", "sideways", "engine kind (scan|selcrack|presorted|sideways|partial|rowstore)")
		shards   = flag.Int("shards", 0, "partition the relation across this many independently locked engines (0 = unsharded)")
		policy   = flag.String("policy", "", "adaptive cracking policy (default|stochastic|capped; empty = crack at query bounds only)")
		workers  = flag.Int("workers", 0, "concurrently executing queries (0 = GOMAXPROCS)")
		snapshot = flag.Bool("snapshot", false, "serve reads from epoch-protected snapshots (lock-free reads; selcrack engines, per shard when sharded)")
		timeout  = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		batch    = flag.Bool("batch", false, "enable admission batching of same-attribute queries")
		rows     = flag.Int("rows", 200_000, "synthetic relation rows")
		seed     = flag.Int64("seed", 1, "synthetic relation seed")
		maxFrame = flag.Int("max-frame", 0, "largest accepted request frame in bytes (0 = default)")
		maxWait  = flag.Int("max-waiting", 0, "shed queries in-band once this many are queued for a worker (0 = queue without bound)")
		maxInfl  = flag.Int("max-inflight", 0, "shed requests in-band once this many are in flight across all connections (0 = per-connection pipelining limits only)")
		faultR   = flag.Float64("fault-rate", 0, "DEBUG: inject connection faults (corruption, resets, truncation, partial writes, delays) at this aggregate per-operation rate")
		faultS   = flag.Int64("fault-seed", 1, "DEBUG: seed for -fault-rate decisions")
		dataDir  = flag.String("data-dir", "", "durable mode: write-ahead log + checkpoints in this directory; restarts recover the store warm")
		fsync    = flag.String("fsync", "group", "durable mode fsync policy (group|always|none)")
		metrics  = flag.String("metrics-addr", "", "serve /metrics (Prometheus text; ?format=json for JSON) and /debug/pprof/* on this address (empty = off)")
		traceN   = flag.Int("trace-sample", 0, "server-side sample 1 in N requests for tracing; traces print as one-line JSON events on stderr (0 = off)")
	)
	flag.Parse()

	kind, ok := engine.KindByName(*kindName)
	if !ok {
		fmt.Fprintf(os.Stderr, "crackserved: unknown engine kind %q\n", *kindName)
		os.Exit(2)
	}
	var pol *crack.Policy
	if *policy != "" {
		pk, ok := crack.KindByName(*policy)
		if !ok {
			fmt.Fprintf(os.Stderr, "crackserved: unknown policy %q\n", *policy)
			os.Exit(2)
		}
		p := crack.Policy{Kind: pk}
		pol = &p
	}

	rng := rand.New(rand.NewSource(*seed))
	domain := int64(*rows)
	rel := store.Build("R", *rows, []string{"A", "B", "C"}, func(string, int) store.Value {
		return 1 + rng.Int63n(domain)
	})

	var e engine.Engine
	if *dataDir != "" {
		if *shards > 1 || *snapshot {
			fmt.Fprintln(os.Stderr, "crackserved: -data-dir is incompatible with -shards and -snapshot")
			os.Exit(2)
		}
		mode, err := wal.ParseSyncMode(*fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crackserved: %v\n", err)
			os.Exit(2)
		}
		e, err = engine.OpenDurable(kind, rel, *dataDir, engine.DurableOptions{Sync: mode, Policy: pol})
		if err != nil {
			fmt.Fprintf(os.Stderr, "crackserved: open %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		if ds, ok := engine.DurStatsOf(e); ok {
			switch {
			case !ds.Recovered:
				fmt.Printf("crackserved: durable: fresh store in %s (fsync=%s)\n", *dataDir, mode)
			case ds.CleanShutdown:
				fmt.Printf("crackserved: durable: clean recovery from %s (tape=%d cracks, no replay) in %v\n",
					*dataDir, ds.TapeLen, ds.RecoveryTime.Round(time.Millisecond))
			default:
				fmt.Printf("crackserved: durable: replayed recovery from %s (%d records, %d bytes, %d torn bytes truncated, tape=%d cracks) in %v\n",
					*dataDir, ds.ReplayedRecords, ds.ReplayedBytes, ds.TruncatedBytes, ds.TapeLen, ds.RecoveryTime.Round(time.Millisecond))
			}
		}
	} else if *shards > 1 {
		opts := shard.Options{Attr: "A", Snapshot: *snapshot}
		if pol != nil {
			opts.Policy = *pol
		}
		e = shard.New(kind, rel, *shards, opts)
	} else {
		e = engine.New(kind, rel)
	}

	// The metrics registry observes every layer at scrape time: the engine
	// bridge (kernel, snapshot, WAL) registers here, and the netserve /
	// serve layers register their own instruments through Options.Metrics.
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crackserved: metrics listen %s: %v\n", *metrics, err)
			os.Exit(1)
		}
		go http.Serve(mln, mux)
		fmt.Printf("crackserved: metrics and pprof on http://%s/metrics\n", mln.Addr())
	}

	opts := netserve.Options{
		Serve: serve.Options{
			Workers:    *workers,
			Batch:      *batch,
			Timeout:    *timeout,
			Policy:     pol,
			MaxWaiting: *maxWait,
			Snapshot:   *snapshot,
		},
		MaxFrame:    *maxFrame,
		MaxInflight: *maxInfl,
		Metrics:     reg,
		TraceSample: *traceN, // events go to stderr (netserve's default sink)
	}
	var srv *netserve.Server
	var bound net.Addr
	if *faultR > 0 {
		// Chaos debug mode: the daemon's own listener injects faults, so a
		// plain client exercises the whole resilience path with no proxy.
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crackserved: %v\n", err)
			os.Exit(1)
		}
		bound = ln.Addr()
		srv = netserve.NewServer(e, opts)
		go srv.Serve(faultnet.WrapListener(ln, faultnet.Mix(*faultR, *faultS)))
		fmt.Printf("crackserved: FAULT INJECTION ON: %.2f%% aggregate rate, seed %d\n", *faultR*100, *faultS)
	} else {
		var err error
		srv, err = netserve.Listen(*addr, e, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crackserved: %v\n", err)
			os.Exit(1)
		}
		bound = srv.Addr()
	}
	// Register the engine bridge against the engine that actually serves:
	// serve.New may have wrapped e (Concurrent, or Snapshot under
	// -snapshot), and the wrapper is what locks correctly for scrapes.
	engine.RegisterMetrics(reg, srv.Engine())
	fmt.Printf("crackserved: %s engine (%d rows, shards=%d, policy=%s) listening on %s\n",
		kind, *rows, *shards, orDefault(*policy), bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("crackserved: draining...")
	t0 := time.Now()
	srv.Close()
	// Everything in flight is answered; now make it durable. CloseDurable
	// fsyncs the log, writes a final checkpoint, and leaves the clean-
	// shutdown marker so the next start skips replay.
	if ok, err := engine.CloseDurable(e); ok {
		if err != nil {
			fmt.Fprintf(os.Stderr, "crackserved: durable close: %v\n", err)
		} else {
			fmt.Println("crackserved: durable: checkpointed and marked clean")
		}
	}
	st := srv.Stats()
	fmt.Printf("crackserved: drained in %v; served %d queries (%d errors), %.0f q/s, p50=%v p99=%v max=%v\n",
		time.Since(t0).Round(time.Millisecond), st.Queries, st.Errors, st.QPS, st.P50, st.P99, st.Max)
	// Durability and snapshot lifecycle summaries, when the engine has
	// those layers: the numbers an operator wants in the shutdown log to
	// corroborate a clean drain (everything fsynced, nothing in limbo).
	if ds, ok := engine.DurStatsOf(srv.Engine()); ok {
		fmt.Printf("crackserved: durable: %d appends, %d fsyncs, %d group commits, %d tape records, %d checkpoints\n",
			ds.Wal.Appends, ds.Wal.Fsyncs, ds.Wal.GroupCommits, ds.TapeLen, ds.Checkpoints)
	}
	if ss, ok := engine.SnapshotStatsOf(srv.Engine()); ok {
		fmt.Printf("crackserved: snapshots: %d published, %d reclaimed, %d in limbo\n",
			ss.Published, ss.Reclaimed, ss.Limbo)
	}
}

func orDefault(policy string) string {
	if policy == "" {
		return "default"
	}
	return policy
}
